// Message vocabulary of the atomic commit protocol (Fig. 1), plus the
// client-facing certification messages.
#pragma once

#include <vector>

#include "commit/log.h"
#include "common/types.h"
#include "sim/message.h"
#include "tcs/decision.h"
#include "tcs/payload.h"

namespace ratc::commit {

/// Client -> chosen coordinator replica: certify(t, l).
struct CertifyRequest {
  static constexpr const char* kName = "CERTIFY";
  TxnId txn = 0;
  tcs::Payload payload;
  std::size_t wire_size() const { return 16 + payload.wire_size(); }
};

namespace detail {
template <class Item>
std::size_t batch_wire_size(const std::vector<Item>& items) {
  std::size_t n = 16;  // header + count
  for (const Item& it : items) {
    if constexpr (sim::HasWireSize<Item>) {
      n += it.wire_size();
    } else {
      n += sizeof(Item);
    }
  }
  return n;
}
}  // namespace detail

/// Coordinator -> shard leader (Fig. 1 line 3 / line 73).  `has_payload` is
/// false for the retry path's ⊥ payload.
struct Prepare {
  static constexpr const char* kName = "PREPARE";
  TxnId txn = 0;
  bool has_payload = true;
  tcs::Payload payload;  ///< l|s, the shard projection
  TxnMeta meta;
  std::size_t wire_size() const {
    return 24 + payload.wire_size() + meta.participants.size() * 4;
  }
};

/// Leader -> coordinator (Fig. 1 lines 7, 17).
struct PrepareAck {
  static constexpr const char* kName = "PREPARE_ACK";
  Epoch epoch = kNoEpoch;
  ShardId shard = 0;
  Slot slot = kNoSlot;
  TxnId txn = 0;
  tcs::Payload payload;
  tcs::Decision vote = tcs::Decision::kAbort;
  TxnMeta meta;
  Time prepare_ts = 0;  ///< the leader's CSN-log stamp for this slot
  std::size_t wire_size() const {
    return 48 + payload.wire_size() + meta.participants.size() * 4;
  }
};

/// Coordinator -> followers (Fig. 1 line 20): replicates the leader's vote
/// and payload.  (The shard field is redundant with the receiver's own
/// shard; it is carried for monitoring and debugging.  The coordinator
/// field is used only by the leader-driven replication ablation, where the
/// sender is the leader but acknowledgements must go to the coordinator.)
struct Accept {
  static constexpr const char* kName = "ACCEPT";
  Epoch epoch = kNoEpoch;
  ShardId shard = 0;
  Slot slot = kNoSlot;
  TxnId txn = 0;
  tcs::Payload payload;
  tcs::Decision vote = tcs::Decision::kAbort;
  TxnMeta meta;
  ProcessId coordinator = kNoProcess;
  Time prepare_ts = 0;  ///< the leader's CSN-log stamp, replicated with the slot
  std::size_t wire_size() const {
    return 48 + payload.wire_size() + meta.participants.size() * 4;
  }
};

/// Follower -> coordinator (Fig. 1 line 25).
struct AcceptAck {
  static constexpr const char* kName = "ACCEPT_ACK";
  ShardId shard = 0;
  Epoch epoch = kNoEpoch;
  Slot slot = kNoSlot;
  TxnId txn = 0;
  tcs::Decision vote = tcs::Decision::kAbort;
};

// --- batched certification ---------------------------------------------------
//
// The certification function is distributive (requirement (1) of Sec. 2):
// the vote over a set of payloads is the meet of pairwise checks, so many
// payloads can ride one CERTIFY round without changing any decision.  Each
// wrapper below carries a vector of the corresponding per-transaction
// message; handlers apply the items in order, so a batch is semantically the
// simultaneous delivery of its items.  Batches of size 1 are never sent —
// the frontends fall back to the scalar messages, keeping batch_size=1 runs
// bit-identical to the pre-batching protocol.

/// Coordinator -> shard leader: one PREPARE round for a whole batch.
struct PrepareBatch {
  static constexpr const char* kName = "PREPARE_BATCH";
  std::vector<Prepare> items;
  std::size_t wire_size() const { return detail::batch_wire_size(items); }
};

/// Leader -> coordinator: the acks of one PrepareBatch.
struct PrepareAckBatch {
  static constexpr const char* kName = "PREPARE_ACK_BATCH";
  std::vector<PrepareAck> items;
  std::size_t wire_size() const { return detail::batch_wire_size(items); }
};

/// Coordinator (or leader, in the leader-driven ablation) -> follower: one
/// replication write for a whole batch.
struct AcceptBatch {
  static constexpr const char* kName = "ACCEPT_BATCH";
  std::vector<Accept> items;
  std::size_t wire_size() const { return detail::batch_wire_size(items); }
};

/// Follower -> coordinator: the acks of one AcceptBatch.
struct AcceptAckBatch {
  static constexpr const char* kName = "ACCEPT_ACK_BATCH";
  std::vector<AcceptAck> items;
  std::size_t wire_size() const { return detail::batch_wire_size(items); }
};

/// Client -> chosen coordinator replica: a whole batch of certify(t, l) in
/// one message — the remote twin of Replica::certify_batch_local, used by
/// the real-time load generator.  Size-1 batches are never sent (the
/// frontends fall back to the scalar CertifyRequest).
struct CertifyBatchRequest {
  static constexpr const char* kName = "CERTIFY_BATCH";
  std::vector<CertifyRequest> items;
  std::size_t wire_size() const { return detail::batch_wire_size(items); }
};

/// Coordinator -> shard members (Fig. 1 line 29).
struct DecisionMsg {
  static constexpr const char* kName = "DECISION";
  Epoch epoch = kNoEpoch;
  ShardId shard = 0;
  Slot slot = kNoSlot;
  TxnId txn = 0;
  tcs::Decision decision = tcs::Decision::kAbort;
  Time csn_ts = 0;  ///< csn(t).ts for commits: max prepare stamp over shards
};

/// Coordinator -> client (Fig. 1 line 27).
struct ClientDecision {
  static constexpr const char* kName = "DECISION_CLIENT";
  TxnId txn = 0;
  tcs::Decision decision = tcs::Decision::kAbort;
  Time csn_ts = 0;  ///< csn(t).ts for commits (0 for aborts)
};

// --- reconfiguration (Fig. 1 lines 33-69) ----------------------------------

struct Probe {
  static constexpr const char* kName = "PROBE";
  Epoch epoch = kNoEpoch;  ///< recon_epoch being proposed
};

struct ProbeAck {
  static constexpr const char* kName = "PROBE_ACK";
  bool initialized = false;
  Epoch epoch = kNoEpoch;
  ShardId shard = 0;
};

struct NewConfig {
  static constexpr const char* kName = "NEW_CONFIG";
  Epoch epoch = kNoEpoch;
  std::vector<ProcessId> members;
  std::size_t wire_size() const { return 16 + members.size() * 4; }
};

/// New leader -> new followers: full state transfer (Fig. 1 line 60).
struct NewState {
  static constexpr const char* kName = "NEW_STATE";
  Epoch epoch = kNoEpoch;
  std::vector<ProcessId> members;
  ReplicaLog log;
  std::size_t wire_size() const { return 16 + members.size() * 4 + log.wire_size(); }
};

}  // namespace ratc::commit
