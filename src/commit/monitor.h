// Runtime invariant monitor for the atomic commit protocol.
//
// Implements the paper's Figure 3 and Figure 5 invariants as online checks
// over a simulated execution, plus the data collection needed to run the
// TCS-LL checker (Figure 6) afterwards:
//
//   Inv 1  : follower log prefix matches the leader snapshot taken when the
//            corresponding PREPARE_ACK was sent (checked at ACCEPT_ACK send).
//   Inv 2  : accepted slots persist into higher epochs (checked when a
//            process installs a new epoch via NEW_CONFIG/NEW_STATE).
//   Inv 3  : no ACCEPT_ACK for an epoch below an acknowledged PROBE.
//   Inv 4  : decision uniqueness per slot (4a) and per transaction (4b).
//   Inv 5  : a process skipped by an accepted epoch never rejoins later.
//   Inv 6/9: ACCEPT consistency per (epoch, slot) and per (epoch, txn).
//   Inv 11 : acceptance uniqueness across epochs.
//   Inv 12b: commit decisions only land on slots with commit votes.
//
// Violations are reported to a ViolationSink rather than asserted, so tests
// can also verify that deliberately broken variants DO violate them.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "checker/tcsll.h"
#include "commit/log.h"
#include "commit/messages.h"
#include "common/types.h"
#include "common/violation.h"
#include "configsvc/config.h"
#include "sim/network.h"

namespace ratc::commit {

class Replica;

/// Thread-safety: every entry point locks an internal mutex, so one Monitor
/// can observe a multithreaded rt::ThreadedRuntime run.  The process-state
/// reads (leader/follower logs, epochs) are always of the *acting* process —
/// the runtime fires on_send on the sender's worker and on_deliver on the
/// receiver's worker, and the replica hooks run on the replica's own worker
/// — so they need no further synchronization.  Accessors that return
/// references (violations(), decided()) are only safe after the runtime has
/// stopped (or on the single-threaded sim).
class Monitor : public sim::NetworkObserver {
 public:
  explicit Monitor(rt::Runtime& rt) : rt_(rt) {}
  explicit Monitor(sim::Simulator& sim) : Monitor(sim.runtime()) {}

  // --- wiring ---------------------------------------------------------------

  void register_replica(Replica* r);
  void register_config(ShardId shard, const configsvc::ShardConfig& config);

  // --- hooks invoked by Replica ----------------------------------------------

  void on_vote_computed(ShardId shard, Epoch epoch, Slot slot, TxnId txn,
                        tcs::Decision vote, const tcs::Payload& payload,
                        std::vector<TxnId> committed_against,
                        std::vector<TxnId> prepared_against);
  void on_epoch_installed(const Replica& replica);
  void on_local_decision(TxnId txn, tcs::Decision d);

  // --- network tap -----------------------------------------------------------

  void on_send(Time now, ProcessId from, ProcessId to,
               const sim::AnyMessage& msg) override;
  void on_deliver(Time now, ProcessId from, ProcessId to,
                  const sim::AnyMessage& msg) override;

  // --- results ---------------------------------------------------------------

  const ViolationSink& violations() const { return sink_; }
  ViolationSink& sink() { return sink_; }

  /// Decisions externalized in DECISION messages (input to TCS-LL's (10)).
  const std::map<TxnId, tcs::Decision>& decided() const { return decided_; }

  /// Assembles the TCS-LL checker input from the collected records.
  checker::TcsLLInput tcsll_input(const tcs::History& history,
                                  const tcs::ShardMap& shard_map,
                                  const tcs::Certifier& certifier) const;

  /// Number of completed acceptances (diagnostics).
  std::size_t accepted_count() const { return acceptances_.size(); }

 private:
  struct SnapshotEntry {
    bool filled = false;
    TxnId txn = 0;
    tcs::Decision vote = tcs::Decision::kAbort;
    tcs::Payload payload;
  };
  struct Acceptance {
    ShardId shard = 0;
    Epoch epoch = kNoEpoch;
    Slot slot = kNoSlot;
    TxnId txn = 0;
    tcs::Payload payload;
    tcs::Decision vote = tcs::Decision::kAbort;
    std::vector<SnapshotEntry> leader_prefix;  ///< slots 1..slot at PREPARE_ACK
    std::set<ProcessId> acks;
    bool complete = false;
  };
  struct VoteRecord {
    tcs::Decision vote = tcs::Decision::kAbort;
    tcs::Payload payload;
    std::vector<TxnId> committed_against;
    std::vector<TxnId> prepared_against;
  };

  using AcceptKey = std::tuple<ShardId, Epoch, Slot>;

  Replica* replica_of(ProcessId pid) const;
  ShardId shard_of(ProcessId pid) const;
  /// Scalar observation bodies, shared by the scalar and batched wire forms.
  void observe_prepare_ack(ProcessId from, const PrepareAck& pa);
  void observe_accept(const Accept& a);
  void observe_accept_ack(ProcessId from, const AcceptAck& aa);
  const configsvc::ShardConfig* config_of(ShardId shard, Epoch epoch) const;
  void register_config_locked(ShardId shard, const configsvc::ShardConfig& config);
  void maybe_complete(Acceptance& acc);
  void check_prefix_against_leader(const Replica& replica, const Acceptance& acc,
                                   const char* invariant);
  void report(const std::string& invariant, const std::string& details);

  rt::Runtime& rt_;
  /// Serializes all entry points (workers of a threaded runtime tap the
  /// monitor concurrently; on the sim this is uncontended).
  mutable std::mutex mu_;
  ViolationSink sink_;
  std::map<ProcessId, Replica*> replicas_;
  std::map<ShardId, std::map<Epoch, configsvc::ShardConfig>> configs_;

  std::map<AcceptKey, Acceptance> acceptances_;
  /// First complete acceptance per (shard, txn) — the TCS-LL records; also
  /// backs the Inv 11 checks.
  std::map<std::pair<ShardId, TxnId>, AcceptKey> accepted_txn_;
  /// Complete acceptances per (shard, slot), for the Inv 11a cross-epoch check.
  std::map<std::pair<ShardId, Slot>, std::vector<AcceptKey>> complete_by_slot_;
  /// Vote computations keyed (shard, slot, txn) -> epoch -> record.
  std::map<std::tuple<ShardId, Slot, TxnId>, std::map<Epoch, VoteRecord>> votes_;

  // Inv 3: highest epoch each process acknowledged a PROBE for.
  std::map<ProcessId, Epoch> probe_acked_;
  // Inv 4a: decision per (shard, slot); Inv 4b: decision per txn.
  std::map<std::pair<ShardId, Slot>, tcs::Decision> slot_decision_;
  std::map<TxnId, tcs::Decision> decided_;
  // Inv 6/9: ACCEPT consistency.
  std::map<AcceptKey, std::tuple<TxnId, tcs::Payload, tcs::Decision>> accept_sent_;
  std::map<std::tuple<ShardId, Epoch, TxnId>, Slot> accept_slot_;
  std::set<std::string> reported_;
};

}  // namespace ratc::commit
