// The per-replica certification log: the paper's txn / payload / vote /
// dec / phase arrays (Fig. 1), stored as one slot-indexed array of entries.
// Slots are 1-based; followers may have holes (phase == kStart) because
// ACCEPT messages are sent by transaction coordinators, not the leader, and
// therefore arrive unordered (paper Sec. 3, Invariant 1 discussion).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "tcs/decision.h"
#include "tcs/payload.h"

namespace ratc::commit {

enum class Phase { kStart, kPrepared, kDecided };

/// Transaction metadata carried in PREPARE/ACCEPT so that any replica that
/// has the transaction prepared can act as a recovery coordinator
/// (`retry`, Fig. 1 line 70): the paper's shards(t) and client(t) functions
/// made concrete.
struct TxnMeta {
  TxnId txn = 0;
  std::vector<ShardId> participants;
  ProcessId client = kNoProcess;

  friend bool operator==(const TxnMeta&, const TxnMeta&) = default;
};

struct LogEntry {
  TxnId txn = 0;
  tcs::Payload payload;
  tcs::Decision vote = tcs::Decision::kAbort;
  tcs::Decision dec = tcs::Decision::kAbort;
  Phase phase = Phase::kStart;
  TxnMeta meta;
  /// Leader-stamped prepare time (CSN log): set when the leader appends the
  /// slot, carried to followers in ACCEPT, preserved by NEW_STATE.  The
  /// replica's read watermark sits below the smallest prepare_ts among
  /// prepared-undecided slots.
  Time prepare_ts = 0;
  /// csn(t).ts of the commit decision (0 until decided / for aborts); with
  /// `txn` this is the key the snapshot store files the writes under.
  Time csn_ts = 0;

  bool filled() const { return phase != Phase::kStart; }
};

class ReplicaLog {
 public:
  /// Entry at 1-based slot k, growing the log as needed.
  LogEntry& at(Slot k) {
    if (k > entries_.size()) entries_.resize(k);
    return entries_[k - 1];
  }

  const LogEntry* find(Slot k) const {
    if (k == kNoSlot || k > entries_.size()) return nullptr;
    return &entries_[k - 1];
  }

  /// max{k | phase[k] != start} (Fig. 1 line 59); 0 when empty.
  Slot max_filled() const {
    for (Slot k = entries_.size(); k >= 1; --k) {
      if (entries_[k - 1].filled()) return k;
    }
    return 0;
  }

  /// Slot holding transaction t, or kNoSlot (Fig. 1 line 6 "∃k. t = txn[k]").
  Slot slot_of(TxnId t) const {
    for (Slot k = 1; k <= entries_.size(); ++k) {
      if (entries_[k - 1].filled() && entries_[k - 1].txn == t) return k;
    }
    return kNoSlot;
  }

  Slot size() const { return entries_.size(); }

  /// Iteration support (slot k => index k-1).
  const std::vector<LogEntry>& entries() const { return entries_; }

  std::size_t wire_size() const {
    std::size_t total = 16;
    for (const auto& e : entries_) total += 32 + e.payload.wire_size();
    return total;
  }

 private:
  std::vector<LogEntry> entries_;
};

}  // namespace ratc::commit
