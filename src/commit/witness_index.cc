#include "commit/witness_index.h"

#include <algorithm>

namespace ratc::commit {

using tcs::Decision;

void WitnessIndex::clear() {
  committed_.clear();
  prepared_.clear();
  committed_writer_.clear();
  prepared_readers_.clear();
  prepared_writers_.clear();
}

void WitnessIndex::rebuild(const ReplicaLog& log) {
  clear();
  for (Slot k = 1; k <= log.size(); ++k) {
    const LogEntry* e = log.find(k);
    if (e == nullptr || !e->filled()) continue;
    if (e->phase == Phase::kPrepared) {
      on_prepared(log, k);
    } else {
      on_decided(log, k);
    }
  }
}

void WitnessIndex::index_prepared_objects(Slot k, const tcs::Payload& p) {
  for (const auto& r : p.reads) prepared_readers_[r.object].insert(k);
  for (const auto& w : p.writes) prepared_writers_[w.object].insert(k);
}

void WitnessIndex::unindex_prepared_objects(Slot k, const tcs::Payload& p) {
  for (const auto& r : p.reads) {
    auto it = prepared_readers_.find(r.object);
    if (it == prepared_readers_.end()) continue;
    it->second.erase(k);
    if (it->second.empty()) prepared_readers_.erase(it);
  }
  for (const auto& w : p.writes) {
    auto it = prepared_writers_.find(w.object);
    if (it == prepared_writers_.end()) continue;
    it->second.erase(k);
    if (it->second.empty()) prepared_writers_.erase(it);
  }
}

void WitnessIndex::index_committed_writer(Slot k, const tcs::Payload& p) {
  for (const auto& w : p.writes) {
    CommittedWriter& top = committed_writer_[w.object];
    // Highest commit version wins; among equals, the later slot (any one of
    // them decides the pairwise check identically — see header).
    if (top.slot == kNoSlot || p.commit_version > top.version ||
        (p.commit_version == top.version && k > top.slot)) {
      top.version = p.commit_version;
      top.slot = k;
    }
  }
}

void WitnessIndex::on_prepared(const ReplicaLog& log, Slot k) {
  const LogEntry* e = log.find(k);
  if (e == nullptr || e->phase != Phase::kPrepared) return;
  if (e->vote != Decision::kCommit) return;  // only commit votes enter L2
  if (!prepared_.emplace(k, e->txn).second) return;  // duplicate notification
  index_prepared_objects(k, e->payload);
}

void WitnessIndex::on_decided(const ReplicaLog& log, Slot k) {
  const LogEntry* e = log.find(k);
  if (e == nullptr || e->phase != Phase::kDecided) return;
  // Leave L2 regardless of the outcome.
  if (prepared_.erase(k) > 0) unindex_prepared_objects(k, e->payload);
  if (e->dec != Decision::kCommit) return;
  if (!committed_.emplace(k, e->txn).second) return;  // duplicate notification
  index_committed_writer(k, e->payload);
}

tcs::Decision WitnessIndex::vote(const tcs::Certifier& certifier, const ReplicaLog& log,
                                 const tcs::Payload& l) const {
  // f_s(L1, l): per object of l, only the highest-version committed writer
  // can flip the monotone pairwise check.
  std::set<Slot> committed_candidates;
  auto add_committed = [&](ObjectId obj) {
    auto it = committed_writer_.find(obj);
    if (it != committed_writer_.end()) committed_candidates.insert(it->second.slot);
  };
  for (const auto& r : l.reads) add_committed(r.object);
  for (const auto& w : l.writes) add_committed(w.object);
  for (Slot k : committed_candidates) {
    if (certifier.against_committed(log.find(k)->payload, l) == Decision::kAbort) {
      return Decision::kAbort;
    }
  }
  // g_s(L2, l): any prepared payload sharing an object with l.
  std::set<Slot> prepared_candidates;
  auto add_prepared = [&](ObjectId obj) {
    auto rit = prepared_readers_.find(obj);
    if (rit != prepared_readers_.end()) {
      prepared_candidates.insert(rit->second.begin(), rit->second.end());
    }
    auto wit = prepared_writers_.find(obj);
    if (wit != prepared_writers_.end()) {
      prepared_candidates.insert(wit->second.begin(), wit->second.end());
    }
  };
  for (const auto& r : l.reads) add_prepared(r.object);
  for (const auto& w : l.writes) add_prepared(w.object);
  for (Slot k : prepared_candidates) {
    if (certifier.against_prepared(log.find(k)->payload, l) == Decision::kAbort) {
      return Decision::kAbort;
    }
  }
  return Decision::kCommit;
}

WitnessIndex::Witnesses WitnessIndex::collect(const ReplicaLog& log, Slot slot) const {
  Witnesses w;
  for (const auto& [k, txn] : committed_) {
    if (k >= slot) break;
    w.l1.push_back(&log.find(k)->payload);
    w.committed.push_back(txn);
  }
  for (const auto& [k, txn] : prepared_) {
    if (k >= slot) break;
    w.l2.push_back(&log.find(k)->payload);
    w.prepared.push_back(txn);
  }
  return w;
}

}  // namespace ratc::commit
