#include "commit/cluster.h"
#include <utility>

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "recon/cluster_support.h"

namespace ratc::commit {

namespace {
constexpr ProcessId kReplicaBase = 100;
constexpr ProcessId kShardStride = 100;
constexpr ProcessId kSpareOffset = 50;
constexpr ProcessId kClientBase = 5000;
constexpr ProcessId kCtrlBase = 8000;
constexpr ProcessId kCsPid = 9000;
}  // namespace

Cluster::Cluster(Options options)
    : options_(options), sim_(options.seed), shard_map_(options.num_shards) {
  sim::Network::Options nopt = options_.exponential_delays
                                   ? sim::Network::exponential_delay_options(
                                         options_.delay_mean)
                                   : sim::Network::unit_delay_options();
  if (options_.link_delay) {
    nopt.delay = [this](Rng&, ProcessId from, ProcessId to) -> Duration {
      Duration d = options_.link_delay(from, to);
      return d > 0 ? d : 1;
    };
  }
  net_ = std::make_unique<sim::Network>(sim_, nopt);
  certifier_ = tcs::make_certifier(options_.isolation);
  if (options_.enable_monitor) {
    monitor_ = std::make_unique<Monitor>(sim_);
    net_->add_observer(monitor_.get());
  }
  if (options_.enable_tracer) {
    tracer_ = std::make_unique<sim::Tracer>();
    net_->add_observer(tracer_.get());
  }

  // Configuration service.
  std::vector<ProcessId> cs_endpoints;
  if (options_.replicated_cs) {
    configsvc::ReplicatedConfigService::Options ropt;
    ropt.first_pid = kCsPid;
    replicated_cs_ = std::make_unique<configsvc::ReplicatedConfigService>(sim_, *net_, ropt);
    cs_endpoints = replicated_cs_->endpoints();
  } else {
    simple_cs_ = std::make_unique<configsvc::SimpleConfigService>(sim_, *net_, kCsPid);
    sim_.add_process(simple_cs_.get());
    cs_endpoints = {kCsPid};
  }

  // Initial configurations: epoch 1, first shard_size replicas, first is
  // leader.  Pre-activated per DESIGN.md Sec. 2 (bootstrap).
  std::map<ShardId, configsvc::ShardConfig> initial;
  for (ShardId s = 0; s < options_.num_shards; ++s) {
    configsvc::ShardConfig cfg;
    cfg.epoch = 1;
    for (std::size_t i = 0; i < options_.shard_size; ++i) {
      cfg.members.push_back(replica_pid(s, i));
    }
    cfg.leader = cfg.members.front();
    initial[s] = cfg;
    if (simple_cs_) simple_cs_->bootstrap(s, cfg);
    if (replicated_cs_) replicated_cs_->bootstrap(s, cfg);
    if (monitor_) monitor_->register_config(s, cfg);
  }

  zones_ = recon::assign_zones(
      options_.num_zones, options_.num_shards,
      options_.shard_size + options_.spares_per_shard,
      [this](ShardId s, std::size_t i) { return replica_pid(s, i); });

  // Replicas and spares.
  for (ShardId s = 0; s < options_.num_shards; ++s) {
    Replica::Options ropt;
    ropt.shard = s;
    ropt.shard_map = &shard_map_;
    ropt.certifier = certifier_.get();
    ropt.cs_endpoints = cs_endpoints;
    ropt.target_shard_size = options_.shard_size;
    ropt.probe_patience = options_.probe_patience;
    ropt.retry_timeout = options_.retry_timeout;
    ropt.leader_ships_accepts = options_.leader_ships_accepts;
    ropt.check_certifier_index = options_.check_certifier_index;
    ropt.monitor = monitor_.get();
    ropt.placement_policy = options_.placement_policy;
    ropt.placement_context = [this](ShardId shard) {
      return placement_context(shard);
    };
    ropt.allocate_spares = [this](ShardId shard, std::size_t n) {
      return allocate_spares(shard, n);
    };
    ropt.release_spares = [this](ShardId shard,
                                 const std::vector<ProcessId>& spares) {
      release_spares(shard, spares);
    };
    for (std::size_t j = 0; j < options_.spares_per_shard; ++j) {
      free_spares_[s].push_back(replica_pid(s, options_.shard_size + j));
    }
    for (std::size_t i = 0; i < options_.shard_size + options_.spares_per_shard; ++i) {
      ProcessId pid = replica_pid(s, i);
      auto r = std::make_unique<Replica>(sim_, *net_, pid, ropt);
      sim_.add_process(r.get());
      if (monitor_) monitor_->register_replica(r.get());
      if (simple_cs_) simple_cs_->subscribe(pid);
      if (replicated_cs_) replicated_cs_->subscribe(pid);
      if (i < options_.shard_size) {
        Status st = (i == 0) ? Status::kLeader : Status::kFollower;
        r->bootstrap(st, initial);
      } else {
        r->bootstrap_spare(initial);
      }
      replicas_.push_back(std::move(r));
    }
  }

  // Autonomous reconfiguration controllers (src/ctrl/): one per shard,
  // sharing the replicas' fresh-spare pool and subscribed to CONFIG_CHANGE
  // so their member watch lists track the live configuration.
  if (options_.enable_controller) {
    for (ShardId s = 0; s < options_.num_shards; ++s) {
      ctrl::ReconController::Options copt;
      copt.shard = s;
      copt.mode = ctrl::ReconController::Mode::kPerShardCas;
      copt.cs_endpoints = cs_endpoints;
      copt.target_shard_size = options_.shard_size;
      copt.tuning = options_.controller_tuning;
      // One placement knob drives replicas and controllers alike unless the
      // controller tuning pins its own policy.
      if (copt.tuning.policy == nullptr) copt.tuning.policy = options_.placement_policy;
      copt.placement_context = [this](ShardId shard) {
        return placement_context(shard);
      };
      copt.allocate_spares = [this](ShardId shard, std::size_t n) {
        return allocate_spares(shard, n);
      };
      copt.release_spares = [this](ShardId shard,
                                   const std::vector<ProcessId>& spares) {
        release_spares(shard, spares);
      };
      auto c = std::make_unique<ctrl::ReconController>(
          sim_, *net_, kCtrlBase + s, std::move(copt));
      sim_.add_process(c.get());
      if (simple_cs_) simple_cs_->subscribe(c->id());
      if (replicated_cs_) replicated_cs_->subscribe(c->id());
      c->bootstrap(initial.at(s));
      controllers_.push_back(std::move(c));
    }
  }
}

std::vector<ProcessId> Cluster::allocate_spares(ShardId shard, std::size_t n) {
  std::vector<ProcessId> out;
  auto& pool = free_spares_[shard];
  while (!pool.empty() && out.size() < n) {
    out.push_back(pool.front());
    pool.erase(pool.begin());
  }
  return out;
}

void Cluster::release_spares(ShardId shard, const std::vector<ProcessId>& spares) {
  auto& pool = free_spares_[shard];
  pool.insert(pool.end(), spares.begin(), spares.end());
}

std::size_t Cluster::controller_attempts() const {
  std::size_t n = 0;
  for (const auto& c : controllers_) n += c->stats().attempts;
  return n;
}

recon::EngineStats Cluster::engine_stats() const {
  return recon::cluster_engine_stats(replicas_, controllers_);
}

std::string Cluster::spare_ledger_verdict() const {
  return recon::cluster_spare_ledger_verdict(replicas_, controllers_);
}

recon::PlacementContext Cluster::placement_context(ShardId s) const {
  auto pool = free_spares_.find(s);
  return recon::cluster_placement_context(
      s, replicas_, zones_,
      pool == free_spares_.end() ? 0 : pool->second.size());
}

ProcessId Cluster::replica_pid(ShardId s, std::size_t idx) const {
  ProcessId base = kReplicaBase + s * kShardStride;
  return idx < options_.shard_size
             ? base + static_cast<ProcessId>(idx)
             : base + kSpareOffset + static_cast<ProcessId>(idx - options_.shard_size);
}

Replica& Cluster::replica(ShardId s, std::size_t idx) {
  return replica_by_pid(replica_pid(s, idx));
}

Replica& Cluster::replica_by_pid(ProcessId pid) {
  for (auto& r : replicas_) {
    if (r->id() == pid) return *r;
  }
  throw std::out_of_range("no replica with pid " + std::to_string(pid));
}

const Replica& Cluster::replica_by_pid(ProcessId pid) const {
  for (const auto& r : replicas_) {
    if (r->id() == pid) return *r;
  }
  throw std::out_of_range("no replica with pid " + std::to_string(pid));
}

std::vector<ProcessId> Cluster::initial_members(ShardId s) const {
  std::vector<ProcessId> out;
  for (std::size_t i = 0; i < options_.shard_size; ++i) out.push_back(replica_pid(s, i));
  return out;
}

std::vector<ProcessId> Cluster::spares(ShardId s) const {
  std::vector<ProcessId> out;
  for (std::size_t j = 0; j < options_.spares_per_shard; ++j) {
    out.push_back(replica_pid(s, options_.shard_size + j));
  }
  return out;
}

configsvc::ShardConfig Cluster::current_config(ShardId s) const {
  if (simple_cs_) return simple_cs_->last(s);
  // Replicated CS: read any alive server's applied state.
  for (std::size_t i = 0; i < replicated_cs_->num_servers(); ++i) {
    if (!sim_.crashed(replicated_cs_->server(i).id())) {
      return replicated_cs_->server(i).last(s);
    }
  }
  return {};
}

Client& Cluster::add_client() {
  ProcessId pid = kClientBase + static_cast<ProcessId>(clients_.size());
  auto c = std::make_unique<Client>(sim_, *net_, pid, &history_);
  sim_.add_process(c.get());
  clients_.push_back(std::move(c));
  return *clients_.back();
}

bool Cluster::await_active_epoch(ShardId s, Epoch at_least, std::size_t max_events) {
  auto active = [&] {
    configsvc::ShardConfig cfg = current_config(s);
    if (cfg.epoch < at_least) return false;
    for (ProcessId m : cfg.members) {
      const Replica& r = std::as_const(*this).replica_by_pid(m);
      if (sim_.crashed(m) || r.epoch() != cfg.epoch) return false;
    }
    return true;
  };
  return sim_.run_until_pred(active, max_events);
}

std::optional<tcs::Csn> Cluster::snapshot_read(const std::vector<ObjectId>& objects,
                                               Duration staleness_bound,
                                               std::uint64_t member_hint) {
  if (objects.empty()) return std::nullopt;
  // One serving member per involved shard: alive and holding the
  // authoritative epoch (the same gate coordinators pass).  A replica mid
  // state transfer reports the old epoch and is skipped.
  std::set<ShardId> shards;
  for (ObjectId o : objects) shards.insert(shard_map_.shard_of(o));
  std::map<ShardId, const Replica*> serving;
  tcs::Csn snapshot = tcs::watermark_at(sim_.now());
  for (ShardId s : shards) {
    configsvc::ShardConfig cfg = current_config(s);
    if (cfg.members.empty()) return std::nullopt;
    const Replica* pick = nullptr;
    for (std::size_t i = 0; i < cfg.members.size(); ++i) {
      ProcessId pid = cfg.members[(member_hint + i) % cfg.members.size()];
      if (sim_.crashed(pid)) continue;
      const Replica& r = std::as_const(*this).replica_by_pid(pid);
      if (r.epoch() != cfg.epoch) continue;
      pick = &r;
      break;
    }
    if (pick == nullptr) return std::nullopt;
    serving[s] = pick;
    snapshot = std::min(snapshot, pick->read_watermark());
  }
  if (staleness_bound > 0 && snapshot.ts + staleness_bound < sim_.now()) {
    return std::nullopt;  // lagging beyond the caller's bound
  }
  tcs::SnapshotReadRecord rec;
  rec.time = sim_.now();
  rec.snapshot = snapshot;
  rec.staleness_bound = staleness_bound;
  for (ObjectId o : objects) {
    const Replica* r = serving.at(shard_map_.shard_of(o));
    std::optional<store::VersionedValue> v = r->snapshot_store().read_at(o, snapshot);
    if (!v) return std::nullopt;  // version history truncated below snapshot
    rec.observations.push_back({o, v->version, v->value});
  }
  history_.record_snapshot_read(std::move(rec));
  return snapshot;
}

checker::TcsLLResult Cluster::check_tcsll() const {
  if (!monitor_) {
    checker::TcsLLResult r;
    r.ok = false;
    r.errors.push_back("monitor disabled; TCS-LL input unavailable");
    return r;
  }
  checker::TcsLLInput input = monitor_->tcsll_input(history_, shard_map_, *certifier_);
  return checker::check_tcsll(input);
}

std::string Cluster::verify() const {
  std::string problems;
  if (monitor_ && !monitor_->violations().empty()) {
    problems += "invariant violations:\n" + monitor_->violations().summary();
  }
  auto conflicting = history_.conflicting_decisions();
  if (!conflicting.empty()) {
    problems += "conflicting client decisions for " +
                std::to_string(conflicting.size()) + " transaction(s)\n";
  }
  auto tcsll = check_tcsll();
  if (!tcsll.ok) {
    problems += "TCS-LL violations:\n" + tcsll.summary();
  }
  return problems;
}

}  // namespace ratc::commit
