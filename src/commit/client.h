// Client process: submits transactions for certification and records the
// TCS history (certify/decide actions) that the checkers consume.
//
// Two modes, matching the paper's latency discussion (Sec. 3):
//  * remote: certify is a message to the coordinator replica, and the
//    decision comes back in a DECISION message (5 message delays after the
//    coordinator starts);
//  * co-located: the client shares a machine with its coordinator; certify
//    and the decision callback are local (4 message delays total).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "commit/messages.h"
#include "commit/replica.h"
#include "sim/process.h"
#include "tcs/history.h"

namespace ratc::commit {

class Client : public sim::Process {
 public:
  Client(rt::Runtime& rt, ProcessId id, tcs::History* history)
      : Process(rt, id, "client" + std::to_string(id)), history_(history) {}
  Client(sim::Simulator& sim, sim::Network& net, ProcessId id, tcs::History* history)
      : Client(net.runtime(), id, history) { (void)sim; }

  /// Submits via messages to the replica with the given process id.
  void certify_remote(ProcessId coordinator, TxnId txn, const tcs::Payload& payload) {
    history_->record_certify(rt().now(), txn, payload);
    sent_[txn] = rt().now();
    rt().send_msg(id(), coordinator, CertifyRequest{txn, payload});
  }

  /// Submits a whole batch via one CERTIFY_BATCH message to a remote
  /// coordinator (a batch of one falls back to the scalar CERTIFY).
  void certify_batch_remote(ProcessId coordinator,
                            const std::vector<std::pair<TxnId, tcs::Payload>>& batch) {
    CertifyBatchRequest req;
    for (const auto& [txn, payload] : batch) {
      history_->record_certify(rt().now(), txn, payload);
      sent_[txn] = rt().now();
      req.items.push_back(CertifyRequest{txn, payload});
    }
    if (req.items.size() == 1) {
      rt().send_msg(id(), coordinator, std::move(req.items.front()));
    } else {
      rt().send_msg(id(), coordinator, std::move(req));
    }
  }

  /// Submits through a co-located coordinator replica (no network hop).
  /// Passing our id as the origin lets a successor coordinator deliver the
  /// decision as DECISION_CLIENT if the co-located replica crashes mid-2PC.
  void certify_colocated(Replica& coordinator, TxnId txn, const tcs::Payload& payload) {
    history_->record_certify(rt().now(), txn, payload);
    sent_[txn] = rt().now();
    coordinator.certify_local(
        txn, payload,
        [this, txn](tcs::Decision d, Time csn_ts) { record_decision(txn, d, csn_ts); },
        id());
  }

  /// Submits a whole batch through one co-located coordinator (one
  /// PREPARE_BATCH per shard leader instead of one PREPARE per txn each).
  void certify_batch_colocated(
      Replica& coordinator,
      const std::vector<std::pair<TxnId, tcs::Payload>>& batch) {
    for (const auto& [txn, payload] : batch) {
      history_->record_certify(rt().now(), txn, payload);
      sent_[txn] = rt().now();
    }
    coordinator.certify_batch_local(
        batch,
        [this](TxnId txn, tcs::Decision d, Time csn_ts) {
          record_decision(txn, d, csn_ts);
        },
        id());
  }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override {
    (void)from;
    if (const auto* d = msg.as<ClientDecision>()) {
      record_decision(d->txn, d->decision, d->csn_ts);
    }
  }

  bool decided(TxnId txn) const { return decisions_.count(txn) > 0; }
  std::optional<tcs::Decision> decision(TxnId txn) const {
    auto it = decisions_.find(txn);
    if (it == decisions_.end()) return std::nullopt;
    return it->second;
  }
  std::size_t decided_count() const { return decisions_.size(); }
  std::size_t submitted_count() const { return sent_.size(); }

  /// certify-to-decide latency in ticks (= message delays in unit-delay
  /// mode), for the latency experiments.
  std::optional<Duration> latency(TxnId txn) const {
    auto d = decided_at_.find(txn);
    auto s = sent_.find(txn);
    if (d == decided_at_.end() || s == sent_.end()) return std::nullopt;
    return d->second - s->second;
  }

  /// Invoked on every decision (used by workload drivers to pipeline).
  std::function<void(TxnId, tcs::Decision)> on_decision;

 private:
  void record_decision(TxnId txn, tcs::Decision d, Time csn_ts = 0) {
    // Record duplicates too: conflicting ones are a spec violation that the
    // history checker must be able to see.
    history_->record_decide(rt().now(), txn, d, tcs::Csn{csn_ts, txn});
    if (decisions_.count(txn) == 0) {
      decisions_[txn] = d;
      decided_at_[txn] = rt().now();
      if (on_decision) on_decision(txn, d);
    }
  }

  tcs::History* history_;
  std::map<TxnId, tcs::Decision> decisions_;
  std::map<TxnId, Time> sent_;
  std::map<TxnId, Time> decided_at_;
};

}  // namespace ratc::commit
