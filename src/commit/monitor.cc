#include "commit/monitor.h"

#include <mutex>
#include <set>
#include <sstream>

#include "commit/replica.h"

namespace ratc::commit {

using tcs::Decision;

void Monitor::register_replica(Replica* r) {
  std::lock_guard<std::mutex> lock(mu_);
  replicas_[r->id()] = r;
}

void Monitor::register_config(ShardId shard, const configsvc::ShardConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  register_config_locked(shard, config);
}

void Monitor::register_config_locked(ShardId shard,
                                     const configsvc::ShardConfig& config) {
  auto& by_epoch = configs_[shard];
  auto [it, inserted] = by_epoch.emplace(config.epoch, config);
  (void)it;
  if (!inserted) return;
  // Inv 5: a process that was skipped by a *fully accepted* epoch e (member
  // before e but not at e) must never appear in a configuration after e.
  for (const auto& [key, acc] : acceptances_) {
    (void)key;
    if (!acc.complete || acc.shard != shard || acc.epoch >= config.epoch) continue;
    const configsvc::ShardConfig* at_e = config_of(shard, acc.epoch);
    if (at_e == nullptr) continue;
    for (ProcessId p : config.members) {
      if (at_e->has_member(p)) continue;
      for (const auto& [e_old, cfg_old] : by_epoch) {
        if (e_old < acc.epoch && cfg_old.has_member(p)) {
          report("Invariant5",
                 process_name(p) + " skipped by accepted epoch " +
                     std::to_string(acc.epoch) + " of s" + std::to_string(shard) +
                     " rejoins at epoch " + std::to_string(config.epoch));
          break;
        }
      }
    }
  }
}

Replica* Monitor::replica_of(ProcessId pid) const {
  auto it = replicas_.find(pid);
  return it == replicas_.end() ? nullptr : it->second;
}

ShardId Monitor::shard_of(ProcessId pid) const {
  auto it = replicas_.find(pid);
  return it == replicas_.end() ? 0 : it->second->shard();
}

const configsvc::ShardConfig* Monitor::config_of(ShardId shard, Epoch epoch) const {
  auto sit = configs_.find(shard);
  if (sit == configs_.end()) return nullptr;
  auto eit = sit->second.find(epoch);
  return eit == sit->second.end() ? nullptr : &eit->second;
}

void Monitor::report(const std::string& invariant, const std::string& details) {
  // The same logical violation is often observable at many points (e.g. per
  // acceptance record); report each distinct one once.
  if (!reported_.insert(invariant + "|" + details).second) return;
  sink_.report(rt_.now(), invariant, details);
}

void Monitor::on_vote_computed(ShardId shard, Epoch epoch, Slot slot, TxnId txn,
                               Decision vote, const tcs::Payload& payload,
                               std::vector<TxnId> committed_against,
                               std::vector<TxnId> prepared_against) {
  std::lock_guard<std::mutex> lock(mu_);
  VoteRecord rec;
  rec.vote = vote;
  rec.payload = payload;
  rec.committed_against = std::move(committed_against);
  rec.prepared_against = std::move(prepared_against);
  votes_[{shard, slot, txn}][epoch] = std::move(rec);
}

void Monitor::on_local_decision(TxnId txn, Decision d) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = decided_.emplace(txn, d);
  if (!inserted && it->second != d) {
    report("Invariant4b", "txn" + std::to_string(txn) + " decided both " +
                              tcs::to_string(it->second) + " and " + tcs::to_string(d));
  }
}

void Monitor::observe_prepare_ack(ProcessId from, const PrepareAck& pa) {
  // Snapshot the leader's arrays up to the slot — the reference state for
  // Invariants 1 and 2.
  AcceptKey key{pa.shard, pa.epoch, pa.slot};
  if (acceptances_.count(key) != 0) return;
  Acceptance acc;
  acc.shard = pa.shard;
  acc.epoch = pa.epoch;
  acc.slot = pa.slot;
  acc.txn = pa.txn;
  acc.payload = pa.payload;
  acc.vote = pa.vote;
  Replica* leader = replica_of(from);
  if (leader != nullptr) {
    acc.leader_prefix.resize(pa.slot);
    for (Slot k = 1; k <= pa.slot; ++k) {
      const LogEntry* e = leader->log().find(k);
      SnapshotEntry& snap = acc.leader_prefix[k - 1];
      if (e != nullptr && e->filled()) {
        snap.filled = true;
        snap.txn = e->txn;
        snap.vote = e->vote;
        snap.payload = e->payload;
      }
    }
  }
  auto [it, _] = acceptances_.emplace(key, std::move(acc));
  maybe_complete(it->second);  // zero-follower configurations
}

void Monitor::observe_accept(const Accept& a) {
  // Inv 6: ACCEPTs for the same (epoch, slot) to a shard agree on
  // transaction, payload and vote.
  AcceptKey key{a.shard, a.epoch, a.slot};
  auto it = accept_sent_.find(key);
  if (it == accept_sent_.end()) {
    accept_sent_.emplace(key, std::make_tuple(a.txn, a.payload, a.vote));
  } else {
    const auto& [t0, l0, d0] = it->second;
    if (t0 != a.txn || !(l0 == a.payload) || d0 != a.vote) {
      report("Invariant6", "conflicting ACCEPT(e=" + std::to_string(a.epoch) +
                               ",k=" + std::to_string(a.slot) + ") at s" +
                               std::to_string(a.shard));
    }
  }
  // Inv 9: the same transaction maps to a single slot per epoch.
  auto slot_it = accept_slot_.find({a.shard, a.epoch, a.txn});
  if (slot_it == accept_slot_.end()) {
    accept_slot_.emplace(std::make_tuple(a.shard, a.epoch, a.txn), a.slot);
  } else if (slot_it->second != a.slot) {
    report("Invariant9", "txn" + std::to_string(a.txn) + " accepted at slots " +
                             std::to_string(slot_it->second) + " and " +
                             std::to_string(a.slot) + " in epoch " +
                             std::to_string(a.epoch));
  }
}

void Monitor::observe_accept_ack(ProcessId from, const AcceptAck& aa) {
  // Inv 3: no ACCEPT_ACK below an acknowledged PROBE epoch.
  auto pit = probe_acked_.find(from);
  if (pit != probe_acked_.end() && aa.epoch < pit->second) {
    report("Invariant3", process_name(from) + " acked ACCEPT at epoch " +
                             std::to_string(aa.epoch) + " after promising epoch " +
                             std::to_string(pit->second));
  }
  AcceptKey key{aa.shard, aa.epoch, aa.slot};
  auto it = acceptances_.find(key);
  if (it != acceptances_.end() && it->second.txn == aa.txn) {
    // Inv 1: the follower's prefix matches the leader snapshot.
    Replica* follower = replica_of(from);
    if (follower != nullptr) {
      check_prefix_against_leader(*follower, it->second, "Invariant1");
    }
    it->second.acks.insert(from);
    maybe_complete(it->second);
  }
}

void Monitor::on_send(Time now, ProcessId from, ProcessId to,
                      const sim::AnyMessage& msg) {
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  // Batched wire forms carry the same protocol steps as their scalar
  // counterparts; the monitor observes each item or the acceptance records
  // (and with them TCS-LL's inputs) silently go missing for batched runs.
  if (const auto* pa = msg.as<PrepareAck>()) {
    observe_prepare_ack(from, *pa);
  } else if (const auto* pab = msg.as<PrepareAckBatch>()) {
    for (const PrepareAck& item : pab->items) observe_prepare_ack(from, item);
  } else if (const auto* a = msg.as<Accept>()) {
    observe_accept(*a);
  } else if (const auto* ab = msg.as<AcceptBatch>()) {
    for (const Accept& item : ab->items) observe_accept(item);
  } else if (const auto* aa = msg.as<AcceptAck>()) {
    observe_accept_ack(from, *aa);
  } else if (const auto* aab = msg.as<AcceptAckBatch>()) {
    for (const AcceptAck& item : aab->items) observe_accept_ack(from, item);
  } else if (const auto* pr = msg.as<ProbeAck>()) {
    Epoch& e = probe_acked_[from];
    e = std::max(e, pr->epoch);
  } else if (const auto* nc = msg.as<NewConfig>()) {
    // The recipient is the new leader of its shard.
    configsvc::ShardConfig cfg;
    cfg.epoch = nc->epoch;
    cfg.members = nc->members;
    cfg.leader = to;
    register_config_locked(shard_of(to), cfg);
  } else if (const auto* d = msg.as<DecisionMsg>()) {
    // Inv 4a: one decision per slot of a shard.
    auto [it, inserted] = slot_decision_.emplace(std::make_pair(d->shard, d->slot),
                                                 d->decision);
    if (!inserted && it->second != d->decision) {
      report("Invariant4a", "slot " + std::to_string(d->slot) + " of s" +
                                std::to_string(d->shard) + " decided both ways");
    }
    auto [dit, dinserted] = decided_.emplace(d->txn, d->decision);
    if (!dinserted && dit->second != d->decision) {
      report("Invariant4b", "txn" + std::to_string(d->txn) + " decided both " +
                                tcs::to_string(dit->second) + " and " +
                                tcs::to_string(d->decision));
    }
  } else if (const auto* cd = msg.as<ClientDecision>()) {
    // Inv 4b at the client boundary.
    auto [it, inserted] = decided_.emplace(cd->txn, cd->decision);
    if (!inserted && it->second != cd->decision) {
      report("Invariant4b", "txn" + std::to_string(cd->txn) + " externalized both " +
                                tcs::to_string(it->second) + " and " +
                                tcs::to_string(cd->decision));
    }
  }
}

void Monitor::on_deliver(Time now, ProcessId from, ProcessId to,
                         const sim::AnyMessage& msg) {
  (void)now;
  (void)from;
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto* d = msg.as<DecisionMsg>()) {
    // Inv 12b: a commit decision must land on a slot whose vote was commit.
    Replica* r = replica_of(to);
    if (r == nullptr || d->decision != Decision::kCommit) return;
    // Mirror the handler's own precondition (line 31): ignore deliveries the
    // replica will ignore.
    if (r->status() == Status::kReconfiguring || r->epoch() < d->epoch) return;
    const LogEntry* e = r->log().find(d->slot);
    if (e == nullptr || !e->filled()) {
      report("Invariant12b", "commit decision for unfilled slot " +
                                 std::to_string(d->slot) + " at " + process_name(to));
    } else if (e->vote != Decision::kCommit) {
      report("Invariant12b", "commit decision for slot " + std::to_string(d->slot) +
                                 " with abort vote at " + process_name(to));
    }
  }
}

void Monitor::maybe_complete(Acceptance& acc) {
  if (acc.complete) return;
  const configsvc::ShardConfig* cfg = config_of(acc.shard, acc.epoch);
  if (cfg == nullptr) return;
  for (ProcessId f : cfg->followers()) {
    if (acc.acks.count(f) == 0) return;
  }
  acc.complete = true;
  // Inv 11b: one (slot, payload, vote) per accepted transaction per shard.
  auto key = std::make_pair(acc.shard, acc.txn);
  auto it = accepted_txn_.find(key);
  if (it == accepted_txn_.end()) {
    accepted_txn_.emplace(key, AcceptKey{acc.shard, acc.epoch, acc.slot});
  } else {
    const Acceptance& first = acceptances_.at(it->second);
    if (first.slot != acc.slot || !(first.payload == acc.payload) ||
        first.vote != acc.vote) {
      report("Invariant11b", "txn" + std::to_string(acc.txn) +
                                 " accepted differently at epochs " +
                                 std::to_string(first.epoch) + " and " +
                                 std::to_string(acc.epoch));
    }
  }
  // Inv 11a: one (txn, payload, vote) per accepted slot per shard.
  auto& same_slot = complete_by_slot_[{acc.shard, acc.slot}];
  for (const AcceptKey& k : same_slot) {
    const Acceptance& other = acceptances_.at(k);
    if (other.epoch == acc.epoch) continue;
    if (other.txn != acc.txn || !(other.payload == acc.payload) ||
        other.vote != acc.vote) {
      report("Invariant11a", "slot " + std::to_string(acc.slot) + " of s" +
                                 std::to_string(acc.shard) +
                                 " accepted different transactions across epochs");
    }
  }
  same_slot.push_back(AcceptKey{acc.shard, acc.epoch, acc.slot});
}

void Monitor::check_prefix_against_leader(const Replica& replica,
                                          const Acceptance& acc,
                                          const char* invariant) {
  // Compare slots where both sides are defined (see DESIGN.md: holes are
  // permitted by the paper's ≺ relation; the accepted slot itself must be
  // present and equal when checking Inv 2 after an epoch installation).
  for (Slot k = 1; k <= acc.slot; ++k) {
    const SnapshotEntry& snap = acc.leader_prefix.size() >= k
                                    ? acc.leader_prefix[k - 1]
                                    : SnapshotEntry{};
    const LogEntry* mine = replica.log().find(k);
    bool mine_filled = mine != nullptr && mine->filled();
    if (!mine_filled || !snap.filled) continue;
    if (mine->txn != snap.txn || !(mine->payload == snap.payload) ||
        mine->vote != snap.vote) {
      std::ostringstream os;
      os << process_name(replica.id()) << " diverges from leader snapshot at slot "
         << k << " (accepted slot " << acc.slot << ", epoch " << acc.epoch << ")";
      report(invariant, os.str());
    }
  }
}

void Monitor::on_epoch_installed(const Replica& replica) {
  std::lock_guard<std::mutex> lock(mu_);
  // Inv 8: new_epoch never trails the process's own epoch.
  if (replica.new_epoch() < replica.epoch()) {
    report("Invariant8", process_name(replica.id()) + " has new_epoch " +
                             std::to_string(replica.new_epoch()) + " < epoch " +
                             std::to_string(replica.epoch()));
  }
  // Inv 10: all transactions in the txn array are distinct.
  {
    std::set<TxnId> seen;
    for (Slot k = 1; k <= replica.log().size(); ++k) {
      const LogEntry* e = replica.log().find(k);
      if (e == nullptr || !e->filled()) continue;
      if (!seen.insert(e->txn).second) {
        report("Invariant10", "txn" + std::to_string(e->txn) + " occupies two slots at " +
                                  process_name(replica.id()));
      }
    }
  }
  // Inv 2: every fully accepted slot of a lower epoch persists, and the
  // prefix before it matches what the leader had when it prepared it.
  for (auto& [key, acc] : acceptances_) {
    (void)key;
    if (!acc.complete || acc.shard != replica.shard()) continue;
    if (acc.epoch >= replica.epoch()) continue;
    const LogEntry* e = replica.log().find(acc.slot);
    if (e == nullptr || !e->filled()) {
      report("Invariant2", "accepted slot " + std::to_string(acc.slot) + " of s" +
                               std::to_string(acc.shard) + " (epoch " +
                               std::to_string(acc.epoch) + ") missing at " +
                               process_name(replica.id()) + " in epoch " +
                               std::to_string(replica.epoch()));
      continue;
    }
    if (e->txn != acc.txn || !(e->payload == acc.payload) || e->vote != acc.vote) {
      report("Invariant2", "accepted slot " + std::to_string(acc.slot) + " of s" +
                               std::to_string(acc.shard) + " differs at " +
                               process_name(replica.id()));
      continue;
    }
    check_prefix_against_leader(replica, acc, "Invariant2");
  }
}

checker::TcsLLInput Monitor::tcsll_input(const tcs::History& history,
                                         const tcs::ShardMap& shard_map,
                                         const tcs::Certifier& certifier) const {
  std::lock_guard<std::mutex> lock(mu_);
  checker::TcsLLInput input;
  input.history = &history;
  input.shard_map = &shard_map;
  input.certifier = &certifier;
  input.decided = decided_;

  // Joins an acceptance with the vote computation that produced it (the
  // latest computation at an epoch ≤ the acceptance epoch).
  auto to_record = [this](const Acceptance& acc) {
    checker::ShardCertRecord rec;
    rec.txn = acc.txn;
    rec.shard = acc.shard;
    rec.epoch = acc.epoch;
    rec.pos = acc.slot;
    rec.vote = acc.vote;
    rec.pload = acc.payload;
    auto vit = votes_.find({acc.shard, acc.slot, acc.txn});
    if (vit != votes_.end()) {
      const VoteRecord* best = nullptr;
      for (const auto& [e, v] : vit->second) {
        if (e <= acc.epoch) best = &v;
      }
      if (best == nullptr) best = &vit->second.begin()->second;
      rec.committed_against = best->committed_against;
      rec.prepared_against = best->prepared_against;
    }
    return rec;
  };

  // One record per (txn, shard): the first complete acceptance.
  for (const auto& [key, acc_key] : accepted_txn_) {
    (void)key;
    const Acceptance& acc = acceptances_.at(acc_key);
    input.records.emplace(std::make_pair(acc.txn, acc.shard), to_record(acc));
  }
  // Plus every complete acceptance as its own (txn, shard, epoch)
  // incarnation, for the checker's per-incarnation witness resolution in
  // constraint (11).
  for (const auto& [key, acc] : acceptances_) {
    (void)key;
    if (!acc.complete) continue;
    input.incarnations.emplace(std::make_tuple(acc.txn, acc.shard, acc.epoch),
                               to_record(acc));
  }
  return input;
}

}  // namespace ratc::commit
