// Deterministic random number generation.
//
// All stochastic choices in the simulator, the workloads, and the property
// tests flow from a single seeded Rng so that every run is reproducible
// from its seed.  The generator is xoshiro256** seeded via SplitMix64,
// which is fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ratc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponentially distributed value with the given mean, rounded up to at
  /// least 1 (used for network delay sampling).
  Duration exponential(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Split off an independent generator (for subsystems that must not
  /// perturb each other's streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Zipfian distribution over [0, n) with parameter theta (YCSB-style).
/// Used by workload generators to create contended key choices.
class Zipfian {
 public:
  Zipfian(std::uint64_t n, double theta);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace ratc
