// Core identifier and quantity types shared by every module.
//
// All ids are plain integral types wrapped in distinct aliases (not strong
// structs) because they cross module boundaries constantly and appear in
// aggregate message structs; distinctness mistakes are caught by the
// protocol checkers rather than the type system.  Quantities that have an
// algebra (virtual time) get their own section.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace ratc {

/// Identifies a simulated process (replica, client, CS frontend, ...).
using ProcessId = std::uint32_t;

/// Identifies a data shard (partition).
using ShardId = std::uint32_t;

/// Unique transaction identifier; assigned by clients.
using TxnId = std::uint64_t;

/// Configuration epoch of a shard (or of the whole system in the RDMA
/// protocol).  Epoch 0 is reserved as "before any configuration".
using Epoch = std::uint64_t;

/// Object (key) identifier in the transactional store.
using ObjectId = std::uint64_t;

/// Totally ordered object version (paper Sec. 2).
using Version = std::uint64_t;

/// Value stored for an object.  A fixed-width integer keeps the simulation
/// allocation-free; the store layer maps application values onto it.
using Value = std::int64_t;

/// Slot index in a shard's certification order (paper's `txn` array index).
/// Slots are 1-based in the paper's pseudocode; we keep 0 as "invalid".
using Slot = std::uint64_t;

inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();
inline constexpr Slot kNoSlot = 0;
inline constexpr Epoch kNoEpoch = 0;

/// Virtual time of the discrete-event simulation, in abstract ticks.  In
/// unit-delay mode one tick == one message delay, which is how the latency
/// benches reproduce the paper's delay counts.
using Time = std::uint64_t;
using Duration = std::uint64_t;

inline constexpr Time kTimeZero = 0;

/// Render helpers used by traces and test failure messages.
inline std::string process_name(ProcessId p) {
  return p == kNoProcess ? "<none>" : "p" + std::to_string(p);
}

}  // namespace ratc
