// Collection point for safety-property violations detected by runtime
// monitors (the checkers for the paper's Figure 3 / Figure 5 invariants).
//
// Violations are collected rather than thrown: the Figure 4a reproduction
// deliberately runs an unsafe protocol variant and asserts that a violation
// IS detected, while every other test asserts the sink stays empty.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace ratc {

struct Violation {
  Time time = 0;
  std::string invariant;  ///< e.g. "Invariant4b"
  std::string details;
};

class ViolationSink {
 public:
  void report(Time time, std::string invariant, std::string details) {
    violations_.push_back({time, std::move(invariant), std::move(details)});
  }

  bool empty() const { return violations_.empty(); }
  const std::vector<Violation>& all() const { return violations_; }

  /// Human-readable dump for test failure messages.
  std::string summary() const {
    std::string out;
    for (const auto& v : violations_) {
      out += "t=" + std::to_string(v.time) + " " + v.invariant + ": " + v.details + "\n";
    }
    return out;
  }

  void clear() { violations_.clear(); }

 private:
  std::vector<Violation> violations_;
};

}  // namespace ratc
