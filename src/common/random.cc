#include "common/random.h"

#include <cmath>

namespace ratc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

double zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::chance(double p) { return next_double() < p; }

Duration Rng::exponential(double mean) {
  double u = next_double();
  if (u >= 1.0) u = 0.999999;
  double d = -mean * std::log(1.0 - u);
  auto ticks = static_cast<Duration>(d);
  return ticks == 0 ? 1 : ticks;
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

Zipfian::Zipfian(std::uint64_t n, double theta)
    : n_(n),
      theta_(theta),
      alpha_(1.0 / (1.0 - theta)),
      zetan_(zeta(n, theta)),
      eta_(0),
      zeta2theta_(zeta(2, theta)) {
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t Zipfian::sample(Rng& rng) const {
  double u = rng.next_double();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto v = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace ratc
