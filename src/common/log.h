// Minimal leveled logging.  Off by default so tests and benches stay quiet;
// examples turn on kInfo to narrate protocol traces.
#pragma once

#include <sstream>
#include <string>

namespace ratc {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace ratc

#define RATC_LOG(level, expr)                                       \
  do {                                                              \
    if (static_cast<int>(level) >= static_cast<int>(::ratc::log_level())) { \
      std::ostringstream ratc_log_os_;                              \
      ratc_log_os_ << expr;                                         \
      ::ratc::detail::log_line(level, ratc_log_os_.str());          \
    }                                                               \
  } while (0)

#define RATC_TRACE(expr) RATC_LOG(::ratc::LogLevel::kTrace, expr)
#define RATC_DEBUG(expr) RATC_LOG(::ratc::LogLevel::kDebug, expr)
#define RATC_INFO(expr) RATC_LOG(::ratc::LogLevel::kInfo, expr)
#define RATC_WARN(expr) RATC_LOG(::ratc::LogLevel::kWarn, expr)
#define RATC_ERROR(expr) RATC_LOG(::ratc::LogLevel::kError, expr)
