// Message and command vocabulary of the Paxos Commit stack (Gray &
// Lamport, "Consensus on Transaction Commit", Sec. 4-6): classical 2PC
// structure — a coordinator fans prepares out to the participant shards and
// combines their votes — but each participant's PREPARED/ABORT vote is
// itself an instance of consensus, realized here as the first
// vote-determining entry in the shard's Multi-Paxos log.  Because the votes
// are replicated facts and the decision is a deterministic function of them
// (commit iff every vote is commit), any recovery proposer can finish a
// stranded transaction by learning — or forcing closed — each vote
// instance: termination never blocks on the crashed coordinator's private
// state, unlike the baseline's all-prepared window.
#pragma once

#include <vector>

#include "common/types.h"
#include "pc/votes.h"
#include "tcs/decision.h"
#include "tcs/payload.h"

namespace ratc::pc {

/// Client -> coordinator (the leader server of one involved shard).
struct PcCertify {
  static constexpr const char* kName = "PC_CERTIFY";
  TxnId txn = 0;
  tcs::Payload payload;
  std::size_t wire_size() const { return 16 + payload.wire_size(); }
};

/// Client -> coordinator: one CERTIFY round for a whole batch (items are
/// handled in order, each as an independent Paxos Commit instance).
/// Batches of one are never sent — the scalar PcCertify is used instead.
struct PcCertifyBatch {
  static constexpr const char* kName = "PC_CERTIFY_BATCH";
  std::vector<PcCertify> items;
  std::size_t wire_size() const {
    std::size_t n = 16;
    for (const PcCertify& it : items) n += it.wire_size();
    return n;
  }
};

/// Coordinator -> participant shard leader: open the shard's vote instance
/// by replicating the prepare (the vote is computed when it applies).
struct PcSubmitPrepare {
  static constexpr const char* kName = "PC_SUBMIT_PREPARE";
  TxnId txn = 0;
  tcs::Payload payload;  ///< shard projection l|s
  std::vector<ShardId> participants;
  ProcessId client = kNoProcess;
  ProcessId coordinator = kNoProcess;
  /// Coordinator's CSN stamp, taken once per transaction and replicated
  /// with every shard's prepare; a commit's csn is exactly this stamp.
  Time prepare_ts = 0;
  std::size_t wire_size() const {
    return 40 + payload.wire_size() + participants.size() * 4;
  }
};

/// Coordinator -> participant shard leader: replicate-and-prepare a whole
/// batch through ONE Paxos append (PcCmdPrepareBatch).
struct PcSubmitPrepareBatch {
  static constexpr const char* kName = "PC_SUBMIT_PREPARE_BATCH";
  std::vector<PcSubmitPrepare> items;
  std::size_t wire_size() const {
    std::size_t n = 16;
    for (const PcSubmitPrepare& it : items) n += it.wire_size();
    return n;
  }
};

/// Participant shard leader -> coordinator, emitted when the prepare
/// applies: the shard's vote instance is now chosen with this value.
struct PcVote {
  static constexpr const char* kName = "PC_VOTE";
  TxnId txn = 0;
  ShardId shard = 0;
  tcs::Decision vote = tcs::Decision::kAbort;
};

/// Coordinator (or recovery proposer) -> participant shard leader: the
/// outcome, a pure function of the chosen votes; each shard replicates it
/// locally (PcCmdDecide) before applying.
struct PcOutcome {
  static constexpr const char* kName = "PC_OUTCOME";
  TxnId txn = 0;
  tcs::Decision decision = tcs::Decision::kAbort;
};

/// Coordinator or recovery proposer -> client.
struct PcClientDecision {
  static constexpr const char* kName = "PC_DECISION_CLIENT";
  TxnId txn = 0;
  tcs::Decision decision = tcs::Decision::kAbort;
  Time csn_ts = 0;  ///< csn(t).ts for commits (the coordinator's stamp)
};

// --- vote recovery (the non-blocking termination protocol) --------------------

/// Recovery proposer (shard leader holding an in-doubt prepared record) ->
/// peer shard leaders: what value did your vote instance choose?  Unlike
/// the baseline's TerminationQuery, the answer is NEVER "in doubt": a peer
/// that has not voted yet first forces its instance closed (PcCmdForceAbort)
/// and answers the chosen value.
struct PcVoteQuery {
  static constexpr const char* kName = "PC_VOTE_QUERY";
  TxnId txn = 0;
};

/// Peer shard leader -> querier: the chosen value of the shard's vote
/// instance (or the decision, if one already applied there).
struct PcVoteAnswer {
  static constexpr const char* kName = "PC_VOTE_ANSWER";
  TxnId txn = 0;
  ShardId shard = 0;  ///< the answering shard
  VoteState state = VoteState::kVoteAbort;
};

// --- Paxos-replicated commands ------------------------------------------------

struct PcCmdPrepare {
  static constexpr const char* kName = "PC_CMD_PREPARE";
  TxnId txn = 0;
  tcs::Payload payload;
  std::vector<ShardId> participants;
  ProcessId client = kNoProcess;
  ProcessId coordinator = kNoProcess;
  Time prepare_ts = 0;  ///< coordinator CSN stamp (see PcSubmitPrepare)
  std::size_t wire_size() const {
    return 40 + payload.wire_size() + participants.size() * 4;
  }
};

/// One replicated log entry carrying a whole batch of prepares: the batch
/// costs one Paxos round instead of one per transaction.  Applying it is
/// defined as applying its items in order, so every replica still computes
/// identical votes from the applied prefix.
struct PcCmdPrepareBatch {
  static constexpr const char* kName = "PC_CMD_PREPARE_BATCH";
  std::vector<PcCmdPrepare> items;
  std::size_t wire_size() const {
    std::size_t n = 16;
    for (const PcCmdPrepare& it : items) n += it.wire_size();
    return n;
  }
};

struct PcCmdDecide {
  static constexpr const char* kName = "PC_CMD_DECIDE";
  TxnId txn = 0;
  tcs::Decision decision = tcs::Decision::kAbort;
};

/// Forces a shard's vote instance closed with ABORT on behalf of a recovery
/// proposer: if the transaction is still unprepared when this command
/// applies, the shard's vote is durably fixed to abort (a later prepare
/// keeps that vote); if a prepare won the race into the log, the chosen
/// vote stands.  The current leader answers `querier` with the chosen value
/// either way, so every answer is a fact about the applied prefix — this is
/// what makes the recovery proposer's inference non-blocking.
struct PcCmdForceAbort {
  static constexpr const char* kName = "PC_CMD_FORCE_ABORT";
  TxnId txn = 0;
  ProcessId querier = kNoProcess;
};

}  // namespace ratc::pc
