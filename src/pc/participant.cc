#include "pc/participant.h"

#include <cassert>

namespace ratc::pc {

using tcs::Decision;

Participant::Participant(sim::Simulator& sim, sim::Network& net, ProcessId id,
                         Options options)
    : Participant(net.runtime(), id, std::move(options)) {
  (void)sim;
}

Participant::Participant(rt::Runtime& rt, ProcessId id, Options options)
    : Process(rt, id, "pc" + std::to_string(id) + "/s" + std::to_string(options.shard)),
      options_(std::move(options)),
      store_(options_.snapshot_history_depth),
      responder_(rt, id) {
  assert(options_.shard_map != nullptr && options_.certifier != nullptr);
  // Vote recovery is not optional here — it is the protocol: every replica
  // watches the coordinators of its in-doubt transactions.
  fd_monitor_ = std::make_unique<fd::PingMonitor>(rt, id, options_.fd);
  fd_monitor_->subscribe({.on_suspect = [this](ProcessId coordinator) {
    on_coordinator_suspected(coordinator);
  }});
  fd_monitor_->start();  // idle until the first coordinator is watched
}

void Participant::on_message(ProcessId from, const sim::AnyMessage& msg) {
  if (responder_.handle(from, msg)) return;
  if (fd_monitor_->handle(from, msg)) return;
  if (const auto* c = msg.as<PcCertify>()) {
    handle_certify(from, *c);
  } else if (const auto* cb = msg.as<PcCertifyBatch>()) {
    handle_certify_batch(from, *cb);
  } else if (const auto* sp = msg.as<PcSubmitPrepare>()) {
    handle_submit_prepare(*sp);
  } else if (const auto* spb = msg.as<PcSubmitPrepareBatch>()) {
    handle_submit_prepare_batch(*spb);
  } else if (const auto* v = msg.as<PcVote>()) {
    handle_vote(*v);
  } else if (const auto* o = msg.as<PcOutcome>()) {
    handle_outcome(*o);
  } else if (const auto* q = msg.as<PcVoteQuery>()) {
    handle_vote_query(from, *q);
  } else if (const auto* a = msg.as<PcVoteAnswer>()) {
    handle_vote_answer(*a);
  }
}

void Participant::handle_certify(ProcessId from, const PcCertify& m) {
  // This server coordinates the round.  It should be the leader server of
  // one involved shard (clients route there).
  std::vector<ShardId> participants = options_.shard_map->shards_of(m.payload);
  if (participants.empty()) {
    rt().send_msg(id(), from, PcClientDecision{m.txn, Decision::kCommit});
    return;
  }
  CoordState& c = coord_[m.txn];
  c.participants = participants;
  c.client = from;
  // One CSN stamp per transaction, replicated with every shard's prepare:
  // csn(t).ts.  Workload clients only write version v+1 after observing
  // v's commit, so stamp order agrees with version order.
  c.prepare_ts = rt().now();
  for (ShardId s : participants) {
    PcSubmitPrepare sp;
    sp.txn = m.txn;
    sp.payload = options_.shard_map->project(m.payload, s);
    sp.participants = participants;
    sp.client = from;
    sp.coordinator = id();
    sp.prepare_ts = c.prepare_ts;
    if (s == options_.shard) {
      handle_submit_prepare(sp);  // local shard: no network hop
    } else {
      rt().send_msg(id(), shard_leader(s), sp);
    }
  }
}

void Participant::handle_certify_batch(ProcessId from, const PcCertifyBatch& m) {
  // Each item is an independent Paxos Commit instance; the batch only
  // coalesces the per-shard replicate-and-prepare traffic (one
  // PcSubmitPrepareBatch per shard leader, one Paxos append there).
  std::map<ShardId, PcSubmitPrepareBatch> per_shard;
  for (const PcCertify& item : m.items) {
    std::vector<ShardId> participants = options_.shard_map->shards_of(item.payload);
    if (participants.empty()) {
      rt().send_msg(id(), from, PcClientDecision{item.txn, Decision::kCommit});
      continue;
    }
    CoordState& c = coord_[item.txn];
    c.participants = participants;
    c.client = from;
    c.prepare_ts = rt().now();  // one stamp per item (see handle_certify)
    for (ShardId s : participants) {
      PcSubmitPrepare sp;
      sp.txn = item.txn;
      sp.payload = options_.shard_map->project(item.payload, s);
      sp.participants = participants;
      sp.client = from;
      sp.coordinator = id();
      sp.prepare_ts = c.prepare_ts;
      per_shard[s].items.push_back(std::move(sp));
    }
  }
  for (auto& [s, batch] : per_shard) {
    if (s == options_.shard) {
      handle_submit_prepare_batch(batch);  // local shard: no network hop
    } else if (batch.items.size() == 1) {
      rt().send_msg(id(), shard_leader(s), std::move(batch.items.front()));
    } else {
      rt().send_msg(id(), shard_leader(s), std::move(batch));
    }
  }
}

void Participant::handle_submit_prepare(const PcSubmitPrepare& m) {
  // Open the shard's vote instance: replicate the prepare through the
  // shard's Paxos group; the vote is chosen when the command applies.
  PcCmdPrepare cmd;
  cmd.txn = m.txn;
  cmd.payload = m.payload;
  cmd.participants = m.participants;
  cmd.client = m.client;
  cmd.coordinator = m.coordinator;
  cmd.prepare_ts = m.prepare_ts;
  paxos_->submit(sim::AnyMessage(std::move(cmd)));
}

void Participant::handle_submit_prepare_batch(const PcSubmitPrepareBatch& m) {
  if (m.items.size() == 1) {
    handle_submit_prepare(m.items.front());
    return;
  }
  // The whole batch rides ONE replicated log entry: one Paxos round where
  // the unbatched path pays one per transaction.
  PcCmdPrepareBatch cmd;
  cmd.items.reserve(m.items.size());
  for (const PcSubmitPrepare& sp : m.items) {
    PcCmdPrepare c;
    c.txn = sp.txn;
    c.payload = sp.payload;
    c.participants = sp.participants;
    c.client = sp.client;
    c.coordinator = sp.coordinator;
    c.prepare_ts = sp.prepare_ts;
    cmd.items.push_back(std::move(c));
  }
  paxos_->submit(sim::AnyMessage(std::move(cmd)));
}

void Participant::handle_outcome(const PcOutcome& m) {
  paxos_->submit(sim::AnyMessage(PcCmdDecide{m.txn, m.decision}));
}

void Participant::apply(Slot slot, const sim::AnyMessage& cmd) {
  (void)slot;
  if (const auto* p = cmd.as<PcCmdPrepare>()) {
    apply_prepare(*p);
  } else if (const auto* pb = cmd.as<PcCmdPrepareBatch>()) {
    // Applying a batch == applying its items in order; votes stay a pure
    // function of the applied prefix on every replica.
    for (const PcCmdPrepare& item : pb->items) apply_prepare(item);
  } else if (const auto* d = cmd.as<PcCmdDecide>()) {
    apply_decide(*d);
  } else if (const auto* f = cmd.as<PcCmdForceAbort>()) {
    apply_force_abort(*f);
  }
}

void Participant::apply_prepare(const PcCmdPrepare& c) {
  auto [it, inserted] = txns_.emplace(c.txn, TxnState{});
  TxnState& st = it->second;
  if (!inserted && st.prepared) {
    // Duplicate prepare (e.g. coordinator retry): the vote instance is
    // already chosen; keep its value.
  } else {
    st.payload = c.payload;
    st.prepared = true;
    st.participants = c.participants;
    st.client = c.client;
    st.coordinator = c.coordinator;
    st.prepare_ts = c.prepare_ts;
    if (st.decided) {
      // A recovery proposer's PcCmdForceAbort beat the prepare into the
      // log: the vote instance chose ABORT and this prepare must honour it.
      st.vote = Decision::kAbort;
    } else {
      // Deterministic vote: certify against the applied prefix.
      std::vector<const tcs::Payload*> prepared_commit;
      for (const auto& [t, other] : txns_) {
        if (t != c.txn && other.prepared && !other.decided &&
            other.vote == Decision::kCommit) {
          prepared_commit.push_back(&other.payload);
        }
      }
      std::vector<const tcs::Payload*> committed;
      committed.reserve(committed_.size());
      for (const auto& pl : committed_) committed.push_back(&pl);
      st.vote = options_.certifier->vote(committed, prepared_commit, c.payload);
    }
  }
  // Only the current leader reports the chosen vote to the coordinator.
  if (paxos_->is_leader()) {
    if (c.coordinator == id()) {
      handle_vote(PcVote{c.txn, options_.shard, st.vote});
    } else {
      rt().send_msg(id(), c.coordinator, PcVote{c.txn, options_.shard, st.vote});
    }
  }
  if (!st.decided && c.coordinator != id()) {
    note_in_doubt(c.txn, c.coordinator);
  }
}

void Participant::apply_decide(const PcCmdDecide& c) {
  auto it = txns_.find(c.txn);
  if (it == txns_.end()) {
    // A recovery-resolved abort can reach a shard that never prepared (its
    // prepare was lost with the coordinator): tombstone it so a
    // late-arriving prepare votes abort.  An unknown COMMIT cannot occur —
    // commit requires every shard's chosen PREPARED vote, and this shard's
    // vote is only chosen by a log entry.
    if (c.decision != Decision::kAbort) return;
    TxnState& st = txns_[c.txn];
    st.decided = true;
    st.decision = Decision::kAbort;
    return;
  }
  if (it->second.decided) return;
  TxnState& st = it->second;
  st.decided = true;
  st.decision = c.decision;
  if (c.decision == Decision::kCommit) {
    committed_.push_back(st.payload);
    // Snapshot visibility is gated on the csn (the replicated coordinator
    // stamp), never on apply order: decides landing out of order across
    // shards cannot expose a non-prefix state to reads.
    store_.apply_at(st.payload, tcs::Csn{st.prepare_ts, c.txn});
  }

  // The in-doubt window (if any) closes with the decision.
  auto tit = term_.find(c.txn);
  if (tit != term_.end()) tit->second.concluded = true;
  clear_in_doubt(c.txn, st.coordinator);

  Time csn_ts = c.decision == Decision::kCommit ? st.prepare_ts : 0;
  auto cit = coord_.find(c.txn);
  if (cit != coord_.end() && !cit->second.outcome_sent && paxos_->is_leader()) {
    // A recovery proposer terminated the round before this (live)
    // coordinator collected all votes — e.g. a partition ate a vote
    // message and a peer's in-doubt timer fired.  Answer the client now
    // (it deduplicates) rather than waiting for votes that may never come.
    cit->second.outcome_sent = true;
    announce_decision(c.txn, c.decision, cit->second.participants,
                      cit->second.client, csn_ts);
  } else if (paxos_->is_leader() && cit == coord_.end() &&
             !st.participants.empty() &&
             st.participants.front() == options_.shard && st.coordinator != id()) {
    // Orphaned coordination: this shard hosted the round's coordinator (the
    // leader of its first participant shard), but that server crashed or
    // was deposed before replying — its volatile coordinator state died
    // with it, yet everything needed to finish the round (client,
    // participants, and now the decision) is in the replicated state.  The
    // current leader adopts the duties; duplicates are harmless.
    ++term_stats_.adopted_coordinations;
    announce_decision(c.txn, c.decision, st.participants, st.client, csn_ts);
  }
}

void Participant::apply_force_abort(const PcCmdForceAbort& c) {
  auto [it, inserted] = txns_.emplace(c.txn, TxnState{});
  TxnState& st = it->second;
  bool tombstoned = false;
  if (!st.prepared && !st.decided) {
    // The query won the race: the vote instance durably chooses ABORT.
    // Every replica applies the same choice (it depends only on the log
    // prefix); a later prepare keeps the abort vote (apply_prepare).
    st.decided = true;
    st.decision = Decision::kAbort;
    st.vote = Decision::kAbort;
    tombstoned = true;
  }
  if (!paxos_->is_leader()) return;
  if (tombstoned) ++term_stats_.tombstones;
  // Either way the instance is now closed: answer the chosen value.
  send_vote_answer(c.querier, c.txn);
}

void Participant::handle_vote(const PcVote& m) {
  auto it = coord_.find(m.txn);
  if (it == coord_.end()) return;
  CoordState& c = it->second;
  c.votes[m.shard] = m.vote;
  maybe_decide(m.txn);
}

void Participant::maybe_decide(TxnId t) {
  CoordState& c = coord_.at(t);
  if (c.outcome_sent) return;
  Decision d = Decision::kCommit;
  for (ShardId s : c.participants) {
    auto vit = c.votes.find(s);
    if (vit == c.votes.end()) return;
    d = meet(d, vit->second);
  }
  c.outcome_sent = true;
  // Every vote instance is chosen (votes are emitted at apply time), so
  // the outcome — a pure function of the votes — is already decided in the
  // Paxos sense.  Externalize it immediately and replicate the decide in
  // every group in parallel; the baseline instead waits for its own
  // group's CmdDecide to apply before replying, one replicated round
  // later.  A crash between here and the broadcast strands nothing: any
  // recovery proposer re-derives the same outcome from the vote instances.
  paxos_->submit(sim::AnyMessage(PcCmdDecide{t, d}));
  announce_decision(t, d, c.participants, c.client,
                    d == Decision::kCommit ? c.prepare_ts : 0);
}

// --- vote recovery (non-blocking termination) ------------------------------------

void Participant::note_in_doubt(TxnId t, ProcessId coordinator) {
  in_doubt_[coordinator].insert(t);
  if (fd_monitor_->ensure_watched(coordinator)) {
    // Already-suspected coordinator: the on_suspect edge will not fire
    // again for it, so kick this transaction's first round directly.
    start_termination_round(t);
  }
  TermState& ts = term_[t];
  if (!ts.timer_armed) {
    // Fallback for a coordinator that stays alive but unhelpful (its
    // outcome message was lost, or it died and the failure detector's
    // pongs are partitioned): query after a generous in-doubt window.
    ts.timer_armed = true;
    rt().schedule_for(id(), options_.in_doubt_timeout,
                       [this, t] { start_termination_round(t); });
  }
}

void Participant::clear_in_doubt(TxnId t, ProcessId coordinator) {
  auto it = in_doubt_.find(coordinator);
  if (it == in_doubt_.end()) return;
  it->second.erase(t);
  if (it->second.empty()) {
    in_doubt_.erase(it);
    fd_monitor_->unwatch(coordinator);
  }
}

void Participant::on_coordinator_suspected(ProcessId coordinator) {
  auto it = in_doubt_.find(coordinator);
  if (it == in_doubt_.end()) return;
  std::vector<TxnId> txns(it->second.begin(), it->second.end());
  for (TxnId t : txns) start_termination_round(t);
}

void Participant::start_termination_round(TxnId t) {
  auto xit = txns_.find(t);
  if (xit == txns_.end() || xit->second.decided) return;
  TxnState& st = xit->second;
  TermState& ts = term_[t];
  if (ts.concluded) return;
  // The query budget is consumed only by rounds actually broadcast as
  // leader, so a replica elected mid-protocol still gets its full budget;
  // the hard cap on total fires bounds a permanently-leaderless replica's
  // retry chain so every run quiesces.
  const int hard_cap = 4 * options_.termination_max_rounds;
  if (ts.leader_rounds >= options_.termination_max_rounds || ts.rounds >= hard_cap) {
    // Give up: some peer's vote instance stayed unreachable for every
    // round.  Unlike 2PC this is never an all-prepared wait — a reachable
    // peer always answers a chosen value — so under pure coordinator
    // crashes this counter must stay 0 (asserted by the ladder sweeps).
    ts.concluded = true;
    if (paxos_->is_leader()) ++term_stats_.blocked;
    clear_in_doubt(t, st.coordinator);
    return;
  }
  ++ts.rounds;
  if (paxos_->is_leader()) {
    ++ts.leader_rounds;
    ts.answers.clear();
    // Our own chosen vote (or applied decision) is one answer.
    ts.answers[options_.shard] =
        st.decided ? (st.decision == Decision::kCommit ? VoteState::kDecidedCommit
                                                       : VoteState::kDecidedAbort)
                   : (st.vote == Decision::kAbort ? VoteState::kVoteAbort
                                                  : VoteState::kVoteCommit);
    for (ShardId s : st.participants) {
      if (s == options_.shard) continue;
      rt().send_msg(id(), shard_leader(s), PcVoteQuery{t});
      ++term_stats_.queries_sent;
    }
    maybe_conclude_termination(t);
  }
  // Re-arm regardless of leadership: answers may be lost to the very fault
  // that stranded the transaction, and this replica may be elected leader
  // between rounds.
  rt().schedule_for(id(), options_.termination_retry_every,
                     [this, t] { start_termination_round(t); });
}

void Participant::handle_vote_query(ProcessId from, const PcVoteQuery& q) {
  auto it = txns_.find(q.txn);
  if (it == txns_.end() || (!it->second.prepared && !it->second.decided)) {
    // Our vote instance is still open: force it closed with ABORT through
    // our own log before answering; the log order arbitrates against an
    // in-flight prepare.  The leader answers when the command applies.
    paxos_->submit(sim::AnyMessage(PcCmdForceAbort{q.txn, from}));
    return;
  }
  send_vote_answer(from, q.txn);
}

void Participant::send_vote_answer(ProcessId to, TxnId t) {
  const TxnState& st = txns_.at(t);
  VoteState state;
  if (st.decided) {
    state = st.decision == Decision::kCommit ? VoteState::kDecidedCommit
                                             : VoteState::kDecidedAbort;
  } else if (st.vote == Decision::kAbort) {
    state = VoteState::kVoteAbort;
  } else {
    state = VoteState::kVoteCommit;  // chosen PREPARED — a durable fact, not doubt
  }
  rt().send_msg(id(), to, PcVoteAnswer{t, options_.shard, state});
  ++term_stats_.answers_sent;
}

void Participant::handle_vote_answer(const PcVoteAnswer& a) {
  auto xit = txns_.find(a.txn);
  if (xit == txns_.end() || xit->second.decided) return;
  auto tit = term_.find(a.txn);
  if (tit == term_.end() || tit->second.concluded) return;
  tit->second.answers[a.shard] = a.state;
  maybe_conclude_termination(a.txn);
}

void Participant::maybe_conclude_termination(TxnId t) {
  const TxnState& st = txns_.at(t);
  TermState& ts = term_.at(t);
  switch (infer_outcome(ts.answers, st.participants.size())) {
    case VoteOutcome::kCommit:
      resolve_in_doubt(t, Decision::kCommit);
      break;
    case VoteOutcome::kAbort:
      resolve_in_doubt(t, Decision::kAbort);
      break;
    case VoteOutcome::kUnknown:
      // Answers outstanding; the retry rounds re-query.  There is no
      // blocked case: every answered instance reports a chosen value.
      break;
  }
}

void Participant::resolve_in_doubt(TxnId t, Decision d) {
  TermState& ts = term_.at(t);
  if (ts.concluded) return;
  ts.concluded = true;
  if (d == Decision::kCommit) {
    ++term_stats_.resolved_commits;
  } else {
    ++term_stats_.resolved_aborts;
  }
  TxnState& st = txns_.at(t);
  clear_in_doubt(t, st.coordinator);
  // Adopt the outcome: durable in our own group, propagated to the peer
  // shards (idempotent at apply), and the stranded client is answered (it
  // deduplicates decisions).  A recovery-resolved commit's csn is the
  // replicated coordinator stamp — the same value the dead coordinator
  // would have externalized.
  paxos_->submit(sim::AnyMessage(PcCmdDecide{t, d}));
  announce_decision(t, d, st.participants, st.client,
                    d == Decision::kCommit ? st.prepare_ts : 0);
}

void Participant::announce_decision(TxnId t, Decision d,
                                    const std::vector<ShardId>& participants,
                                    ProcessId client, Time csn_ts) {
  if (client != kNoProcess) {
    rt().send_msg(id(), client, PcClientDecision{t, d, csn_ts});
  }
  for (ShardId s : participants) {
    if (s == options_.shard) continue;
    rt().send_msg(id(), shard_leader(s), PcOutcome{t, d});
  }
}

tcs::Csn Participant::read_watermark() const {
  // Any future commit of a prepared-undecided transaction lands at its
  // replicated coordinator stamp, so the watermark stays below the smallest
  // such stamp.  A transaction whose prepare is chosen but not yet applied
  // here cannot gate: can_serve_reads() requires a caught-up leader, and a
  // commit needs this shard's chosen vote, which only a log entry applied
  // here can choose — its decision is externalized after the read.
  bool any = false;
  Time min_ts = 0;
  for (const auto& [t, st] : txns_) {
    if (!st.prepared || st.decided) continue;
    if (!any || st.prepare_ts < min_ts) min_ts = st.prepare_ts;
    any = true;
  }
  if (any) return tcs::watermark_below(min_ts);
  return tcs::watermark_at(rt().now());
}

bool Participant::has_prepared(TxnId t) const {
  auto it = txns_.find(t);
  return it != txns_.end() && it->second.prepared;
}

bool Participant::has_decided(TxnId t) const {
  auto it = txns_.find(t);
  return it != txns_.end() && it->second.decided;
}

}  // namespace ratc::pc
