// Paxos Commit participant: the TCS state machine replicated via
// Multi-Paxos, plus the 2PC-shaped coordinator role for transactions
// submitted to it.
//
// The shard's Multi-Paxos log doubles as the acceptor set of its vote
// instances: the vote for transaction t is fixed by the FIRST
// vote-determining entry for t in the log — a PcCmdPrepare (vote computed
// deterministically from the applied prefix, standard state-machine
// replication) or a recovery proposer's PcCmdForceAbort (vote forced to
// ABORT).  Log order arbitrates races between the two, exactly as the
// baseline's CmdResolveAbort does, so every replica agrees on the chosen
// vote and any later reader learns the same value.
//
// What distinguishes this stack from the cooperative baseline is the
// recovery rule (pc/votes.h): a queried shard ALWAYS answers a chosen
// value — forcing its instance closed first if necessary — and an
// all-PREPARED answer set resolves to COMMIT, because a commit decision is
// the deterministic function of exactly these replicated votes.  The
// all-prepared blocked window of 2PC does not exist here; `blocked` in the
// stats can only count give-ups against unreachable peers.
//
// Latency note: the coordinator answers the client as soon as every vote
// instance is chosen (the votes are durable, so the outcome is already
// decided in the Paxos sense) and broadcasts the outcome in parallel with
// its own shard's decide — one replicated round less on the critical path
// than the baseline, which must apply CmdDecide locally before replying.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "fd/failure_detector.h"
#include "paxos/replica.h"
#include "pc/messages.h"
#include "pc/votes.h"
#include "sim/network.h"
#include "sim/process.h"
#include "store/versioned_store.h"
#include "tcs/certifier.h"
#include "tcs/csn.h"
#include "tcs/shard_map.h"

namespace ratc::pc {

class Participant : public sim::Process {
 public:
  struct Options {
    ShardId shard = 0;
    const tcs::ShardMap* shard_map = nullptr;
    const tcs::Certifier* certifier = nullptr;
    /// In-doubt fallback: query peers this long after preparing even if the
    /// failure detector never fires (covers a live coordinator whose
    /// outcome message was lost).
    Duration in_doubt_timeout = 300;
    /// Delay between vote-query rounds.
    Duration termination_retry_every = 160;
    /// Query rounds before giving up (peers unreachable; counted blocked).
    int termination_max_rounds = 5;
    /// Committed versions retained per object for snapshot reads.
    std::size_t snapshot_history_depth = 16;
    fd::PingMonitor::Options fd;
  };

  Participant(rt::Runtime& rt, ProcessId id, Options options);
  Participant(sim::Simulator& sim, sim::Network& net, ProcessId id, Options options);

  void attach_paxos(paxos::PaxosReplica* paxos) { paxos_ = paxos; }
  paxos::PaxosReplica& paxos() { return *paxos_; }

  /// Routing table: leader server of each shard (maintained by the cluster;
  /// static absent failures, updated on failover by the harness).
  void set_shard_leader(ShardId s, ProcessId leader) { leaders_[s] = leader; }
  ProcessId shard_leader(ShardId s) const { return leaders_.at(s); }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override;

  /// Paxos apply upcall.
  void apply(Slot slot, const sim::AnyMessage& cmd);

  // Introspection for tests and the cluster-level verifier.
  bool has_prepared(TxnId t) const;
  bool has_decided(TxnId t) const;
  tcs::Decision decision_of(TxnId t) const { return txns_.at(t).decision; }
  std::size_t committed_count() const { return committed_.size(); }
  /// Every transaction this replica applied a decision for.
  std::map<TxnId, tcs::Decision> decided_txns() const {
    std::map<TxnId, tcs::Decision> out;
    for (const auto& [t, st] : txns_) {
      if (st.decided) out.emplace(t, st.decision);
    }
    return out;
  }
  const TerminationStats& termination_stats() const { return term_stats_; }

  // --- CSN reads ---------------------------------------------------------------
  //
  // Same leader gate as the baseline: no all-follower-ack rule exists, so
  // only a caught-up Paxos leader's applied prefix is guaranteed to contain
  // every prepare whose transaction could commit at or below the watermark.

  /// Leader-gated read eligibility.
  bool can_serve_reads() const { return paxos_->is_leader() && paxos_->caught_up(); }
  /// Largest snapshot this replica can serve locally: below the smallest
  /// coordinator stamp among prepared-undecided transactions, else "now".
  tcs::Csn read_watermark() const;
  const store::SnapshotStore& snapshot_store() const { return store_; }

 private:
  struct TxnState {
    tcs::Payload payload;
    tcs::Decision vote = tcs::Decision::kAbort;
    bool prepared = false;
    bool decided = false;
    tcs::Decision decision = tcs::Decision::kAbort;
    // Metadata replicated with the prepare; lets any replica of any
    // participant shard act as a recovery proposer after the coordinator
    // died.
    std::vector<ShardId> participants;
    ProcessId client = kNoProcess;
    ProcessId coordinator = kNoProcess;
    Time prepare_ts = 0;  ///< coordinator CSN stamp; a commit's csn(t).ts
  };
  struct CoordState {
    std::vector<ShardId> participants;
    ProcessId client = kNoProcess;
    Time prepare_ts = 0;  ///< the stamp this coordinator issued for t
    std::map<ShardId, tcs::Decision> votes;
    bool outcome_sent = false;  ///< replied + outcome broadcast done
  };
  /// Per-transaction recovery progress (proposer side).  Followers re-arm
  /// the retry timer without consuming the query budget — a replica elected
  /// leader mid-protocol still gets its full termination_max_rounds of
  /// queries; `rounds` (total fires, leader or not) is capped separately so
  /// the retry chain always terminates and the simulation quiesces.
  struct TermState {
    int rounds = 0;         ///< total retry fires (hard-capped)
    int leader_rounds = 0;  ///< query rounds actually broadcast as leader
    bool concluded = false;       ///< resolved, or given up (unreachable peers)
    bool timer_armed = false;     ///< in-doubt fallback timer scheduled
    std::map<ShardId, VoteState> answers;
  };

  void handle_certify(ProcessId from, const PcCertify& m);
  void handle_certify_batch(ProcessId from, const PcCertifyBatch& m);
  void handle_submit_prepare(const PcSubmitPrepare& m);
  /// Replicates the whole batch through ONE Paxos append (PcCmdPrepareBatch).
  void handle_submit_prepare_batch(const PcSubmitPrepareBatch& m);
  void handle_vote(const PcVote& m);
  void handle_outcome(const PcOutcome& m);
  void apply_prepare(const PcCmdPrepare& c);
  void apply_decide(const PcCmdDecide& c);
  void apply_force_abort(const PcCmdForceAbort& c);
  void maybe_decide(TxnId t);

  // --- vote recovery (non-blocking termination) --------------------------------
  void handle_vote_query(ProcessId from, const PcVoteQuery& q);
  void handle_vote_answer(const PcVoteAnswer& a);
  /// Marks t in doubt (prepared, undecided, coordinator elsewhere): watch
  /// the coordinator and arm the in-doubt fallback timer.
  void note_in_doubt(TxnId t, ProcessId coordinator);
  void clear_in_doubt(TxnId t, ProcessId coordinator);
  void on_coordinator_suspected(ProcessId coordinator);
  /// One query round: leaders broadcast, everyone re-arms the retry timer;
  /// bounded by termination_max_rounds.
  void start_termination_round(TxnId t);
  /// Answers `to` with the chosen value of t's vote instance here (which
  /// must be closed).
  void send_vote_answer(ProcessId to, TxnId t);
  /// Runs infer_outcome over the answers collected so far.
  void maybe_conclude_termination(TxnId t);
  /// Externalizes a decision: answers the client (if known) and sends
  /// PcOutcome to every participant shard but our own.  `csn_ts` is the
  /// coordinator stamp for commits (0 for aborts).
  void announce_decision(TxnId t, tcs::Decision d,
                         const std::vector<ShardId>& participants,
                         ProcessId client, Time csn_ts);
  /// Adopts d for the in-doubt transaction t: replicate locally, propagate
  /// to the peer shards, and answer the stranded client.
  void resolve_in_doubt(TxnId t, tcs::Decision d);

  Options options_;
  paxos::PaxosReplica* paxos_ = nullptr;
  std::map<ShardId, ProcessId> leaders_;

  // Replicated TCS state (per shard).
  std::map<TxnId, TxnState> txns_;
  std::vector<tcs::Payload> committed_;
  /// Multi-version committed state for snapshot reads, fed by apply_decide;
  /// deterministic across replicas (csn = the replicated coordinator stamp).
  store::SnapshotStore store_;

  // Coordinator-side state (volatile; losing it is harmless here — the
  // replicated vote instances let any recovery proposer finish the round).
  std::map<TxnId, CoordState> coord_;

  // Recovery state (per replica; only leaders speak).
  fd::Responder responder_;
  std::unique_ptr<fd::PingMonitor> fd_monitor_;
  std::map<TxnId, TermState> term_;
  std::map<ProcessId, std::set<TxnId>> in_doubt_;  ///< by coordinator
  TerminationStats term_stats_;
};

}  // namespace ratc::pc
