// The pure, message-free core of Paxos Commit's non-blocking termination
// (Gray & Lamport, "Consensus on Transaction Commit", Sec. 5-6): the
// chosen-vote vocabulary carried in PcVoteAnswer and the outcome-inference
// function, kept free of the Participant state machine so the decision
// table is unit-testable by enumeration (pc_test.cc), mirroring how
// baseline/termination.h isolates the cooperative-termination rules.
//
// The stack reuses baseline::TerminationStats for its recovery counters so
// ladder sweeps read both protocols' blocked/resolved columns through one
// accessor; in this stack `blocked` can only count transactions whose peers
// were unreachable for every bounded query round — never an all-prepared
// window, which inference below resolves to COMMIT.
#pragma once

#include <map>

#include "baseline/termination.h"
#include "common/types.h"

namespace ratc::pc {

/// Counter vocabulary shared with the baseline's cooperative termination,
/// so RunResult surfaces one `term=` column for every ladder rung.
using baseline::TerminationStats;

/// The chosen value of one shard's vote instance, as answered to a
/// PcVoteQuery.  Values are derived from the shard's *applied* Paxos
/// prefix, so every answer is a replicated fact — and, crucially, there is
/// no "still open" state: a queried shard that has not voted forces its
/// instance closed (PcCmdForceAbort) before answering.
enum class VoteState {
  kVoteCommit = 0,    ///< chosen PREPARED: this shard can only commit
  kVoteAbort = 1,     ///< chosen ABORT (certification NO or forced closed)
  kDecidedCommit = 2, ///< a COMMIT decision already applied here
  kDecidedAbort = 3,  ///< an ABORT decision already applied here
};

inline const char* to_string(VoteState s) {
  switch (s) {
    case VoteState::kVoteCommit: return "vote-commit";
    case VoteState::kVoteAbort: return "vote-abort";
    case VoteState::kDecidedCommit: return "decided-commit";
    case VoteState::kDecidedAbort: return "decided-abort";
  }
  return "?";
}

/// Outcome of one inference pass over the vote answers collected so far.
/// There is deliberately no kBlocked: the decision is a deterministic
/// function of the chosen votes (commit iff all participants chose
/// PREPARED), so once every instance is known the outcome is known.
enum class VoteOutcome {
  kUnknown = 0,  ///< some vote instance still unanswered
  kCommit = 1,
  kAbort = 2,
};

inline const char* to_string(VoteOutcome o) {
  switch (o) {
    case VoteOutcome::kUnknown: return "unknown";
    case VoteOutcome::kCommit: return "commit";
    case VoteOutcome::kAbort: return "abort";
  }
  return "?";
}

/// Infers the transaction outcome from the chosen votes collected so far
/// (keyed by participant shard; the recovery proposer contributes its own
/// shard's chosen vote as one answer).  `num_participants` is |shards(t)|:
///  * any kDecided*            => adopt it (a decision is itself the
///                                deterministic function of all votes, so
///                                it subsumes the remaining instances)
///  * any kVoteAbort           => kAbort (one NO vote forecloses commit,
///                                whether certification said no or a
///                                recovery proposer forced the instance)
///  * all participants chose
///    kVoteCommit              => kCommit — THE Paxos Commit edge over 2PC:
///                                a crashed coordinator could only ever
///                                have computed commit from these same
///                                replicated votes, so adopting commit
///                                agrees with anything it externalized
///  * otherwise                => kUnknown (answers outstanding; retry)
inline VoteOutcome infer_outcome(const std::map<ShardId, VoteState>& answers,
                                 std::size_t num_participants) {
  std::size_t chosen_commit = 0;
  for (const auto& [shard, state] : answers) {
    (void)shard;
    if (state == VoteState::kDecidedCommit) return VoteOutcome::kCommit;
    if (state == VoteState::kDecidedAbort || state == VoteState::kVoteAbort) {
      return VoteOutcome::kAbort;
    }
    ++chosen_commit;  // kVoteCommit
  }
  if (num_participants > 0 && chosen_commit >= num_participants) {
    return VoteOutcome::kCommit;
  }
  return VoteOutcome::kUnknown;
}

}  // namespace ratc::pc
