// Harness for the Paxos Commit TCS: builds shards of 2f+1 participants
// (each paired with a Paxos replica on the same machine), a routing table
// of shard leaders, and history-recording clients.  The machine topology
// and pid layout deliberately mirror baseline::BaselineCluster, so a
// (seed, schedule) pair interprets crash/partition faults identically on
// both stacks — the ladder sweeps isolate the termination protocol as the
// only difference between the rungs.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "configsvc/config.h"
#include "pc/participant.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "tcs/certifier.h"
#include "tcs/history.h"
#include "tcs/shard_map.h"

namespace ratc::pc {

class PcClient : public sim::Process {
 public:
  PcClient(rt::Runtime& rt, ProcessId id, tcs::History* history)
      : Process(rt, id, "pcclient" + std::to_string(id)), history_(history) {}
  PcClient(sim::Simulator& sim, sim::Network& net, ProcessId id,
           tcs::History* history)
      : PcClient(net.runtime(), id, history) { (void)sim; }

  void certify(ProcessId coordinator, TxnId txn, const tcs::Payload& payload) {
    history_->record_certify(rt().now(), txn, payload);
    sent_[txn] = rt().now();
    rt().send_msg(id(), coordinator, PcCertify{txn, payload});
  }

  /// One CERTIFY round for a whole batch sharing a coordinator (size 1
  /// falls back to the scalar message).
  void certify_batch(ProcessId coordinator,
                     const std::vector<std::pair<TxnId, tcs::Payload>>& batch) {
    if (batch.size() == 1) {
      certify(coordinator, batch.front().first, batch.front().second);
      return;
    }
    PcCertifyBatch m;
    m.items.reserve(batch.size());
    for (const auto& [txn, payload] : batch) {
      history_->record_certify(rt().now(), txn, payload);
      sent_[txn] = rt().now();
      m.items.push_back(PcCertify{txn, payload});
    }
    rt().send_msg(id(), coordinator, std::move(m));
  }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override {
    (void)from;
    if (const auto* d = msg.as<PcClientDecision>()) {
      if (decisions_.count(d->txn)) return;
      history_->record_decide(rt().now(), d->txn, d->decision,
                              tcs::Csn{d->csn_ts, d->txn});
      decisions_[d->txn] = d->decision;
      decided_at_[d->txn] = rt().now();
      if (on_decision) on_decision(d->txn, d->decision);
    }
  }

  /// Invoked once per transaction on its decision.
  std::function<void(TxnId, tcs::Decision)> on_decision;

  bool decided(TxnId t) const { return decisions_.count(t) > 0; }
  std::optional<tcs::Decision> decision(TxnId t) const {
    auto it = decisions_.find(t);
    if (it == decisions_.end()) return std::nullopt;
    return it->second;
  }
  std::size_t decided_count() const { return decisions_.size(); }
  std::optional<Duration> latency(TxnId t) const {
    auto d = decided_at_.find(t);
    auto s = sent_.find(t);
    if (d == decided_at_.end() || s == sent_.end()) return std::nullopt;
    return d->second - s->second;
  }

 private:
  tcs::History* history_;
  std::map<TxnId, tcs::Decision> decisions_;
  std::map<TxnId, Time> sent_;
  std::map<TxnId, Time> decided_at_;
};

class PcCluster {
 public:
  struct Options {
    std::uint64_t seed = 1;
    std::uint32_t num_shards = 2;
    std::size_t shard_size = 3;  ///< 2f+1 replicas per shard
    std::string isolation = "serializability";
    bool exponential_delays = false;
    double delay_mean = 5.0;
    bool enable_tracer = false;
    /// Forwarded to Participant::Options (recovery is always on — it is
    /// the protocol, not a toggle).
    Duration in_doubt_timeout = 300;
    Duration termination_retry_every = 160;
    int termination_max_rounds = 5;
  };

  explicit PcCluster(Options options);

  Participant& server(ShardId s, std::size_t idx);
  Participant& server_by_pid(ProcessId pid);
  ProcessId leader_server(ShardId s) const;
  /// The server a client should submit to: the leader of the transaction's
  /// first participant shard.
  ProcessId coordinator_for(const tcs::Payload& payload) const;

  // --- topology (static membership: no spares) ---------------------------------

  std::uint32_t num_shards() const { return options_.num_shards; }
  /// All server pids of shard s (including crashed ones).
  std::vector<ProcessId> shard_servers(ShardId s) const;
  /// The Paxos replica co-located with a shard server (they share a
  /// machine: a crash or partition takes both).
  ProcessId paxos_twin(ProcessId server) const;
  /// Synthesized configuration view, mirroring the reconfigurable stacks:
  /// static members, current leader, and a leadership epoch bumped by every
  /// (fail-over or healthy) leader change.
  configsvc::ShardConfig current_config(ShardId s) const;

  PcClient& add_client();
  TxnId next_txn_id() { return next_txn_++; }

  // --- failure & leadership-change hooks ---------------------------------------

  /// Crashes one server and its Paxos twin.  Does NOT repoint leadership:
  /// callers crashing the leader must follow up with elect_leader.  Unlike
  /// the baseline, losing the coordinator's volatile state strands nothing
  /// — the replicated vote instances let any recovery proposer finish.
  void crash_server(ProcessId server);

  /// Leadership change without a crash: `new_leader` starts a Paxos
  /// election and the routing tables are repointed.
  void elect_leader(ShardId s, ProcessId new_leader);

  /// Crashes server idx of shard s (and its Paxos replica), then has
  /// another replica take over leadership and updates the routing tables.
  void fail_over(ShardId s, std::size_t new_leader_idx);

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return *net_; }
  sim::Tracer& tracer() { return *tracer_; }
  tcs::History& history() { return history_; }
  const tcs::ShardMap& shard_map() const { return shard_map_; }
  const tcs::Certifier& certifier() const { return *certifier_; }

  /// Aggregate vote-recovery counters over every participant.
  TerminationStats termination_stats() const;

  /// Read-only snapshot transaction, leader-gated exactly as in the
  /// baseline (no all-follower-ack rule): only a caught-up Paxos leader of
  /// each involved shard may serve; the snapshot is the minimum of their
  /// CSN watermarks.  Zero certification messages; served reads are
  /// recorded in the history.
  std::optional<tcs::Csn> snapshot_read(const std::vector<ObjectId>& objects,
                                        Duration staleness_bound = 0,
                                        std::uint64_t member_hint = 0);

  /// End-of-run verdict: no conflicting client decisions, and every server
  /// (of any shard, crashed or not) that decided a transaction agrees on
  /// its decision — the state-machine-replication and atomicity
  /// obligations.  Returns a diagnostic on failure.
  std::string verify() const;

 private:
  ProcessId server_pid(ShardId s, std::size_t idx) const;
  ProcessId paxos_pid(ShardId s, std::size_t idx) const;

  Options options_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  tcs::ShardMap shard_map_;
  std::unique_ptr<tcs::Certifier> certifier_;
  std::unique_ptr<sim::Tracer> tracer_;
  std::vector<std::unique_ptr<Participant>> servers_;
  std::vector<std::unique_ptr<paxos::PaxosReplica>> paxoses_;
  std::vector<std::unique_ptr<PcClient>> clients_;
  std::map<ShardId, ProcessId> leader_;
  /// Leadership epoch per shard (starts at 1, bumped by leader changes).
  std::map<ShardId, Epoch> epoch_;
  tcs::History history_;
  TxnId next_txn_ = 1;
};

}  // namespace ratc::pc
