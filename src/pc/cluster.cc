#include "pc/cluster.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

namespace ratc::pc {

namespace {
// Same machine layout as the baseline cluster: a (seed, schedule) pair
// interprets its faults over identical pids on both stacks.
constexpr ProcessId kServerBase = 100;
constexpr ProcessId kShardStride = 100;
constexpr ProcessId kPaxosOffset = 50;
constexpr ProcessId kClientBase = 5000;
}  // namespace

PcCluster::PcCluster(Options options)
    : options_(options), sim_(options.seed), shard_map_(options.num_shards) {
  sim::Network::Options nopt = options_.exponential_delays
                                   ? sim::Network::exponential_delay_options(
                                         options_.delay_mean)
                                   : sim::Network::unit_delay_options();
  net_ = std::make_unique<sim::Network>(sim_, nopt);
  certifier_ = tcs::make_certifier(options_.isolation);
  if (options_.enable_tracer) {
    tracer_ = std::make_unique<sim::Tracer>();
    net_->add_observer(tracer_.get());
  }

  for (ShardId s = 0; s < options_.num_shards; ++s) {
    std::vector<ProcessId> group;
    for (std::size_t i = 0; i < options_.shard_size; ++i) {
      group.push_back(paxos_pid(s, i));
    }
    for (std::size_t i = 0; i < options_.shard_size; ++i) {
      Participant::Options sopt;
      sopt.shard = s;
      sopt.shard_map = &shard_map_;
      sopt.certifier = certifier_.get();
      sopt.in_doubt_timeout = options_.in_doubt_timeout;
      sopt.termination_retry_every = options_.termination_retry_every;
      sopt.termination_max_rounds = options_.termination_max_rounds;
      auto server = std::make_unique<Participant>(sim_, *net_, server_pid(s, i), sopt);
      paxos::PaxosReplica::Options popt;
      popt.group = group;
      popt.initial_leader = group[0];
      Participant* raw = server.get();
      auto paxos = std::make_unique<paxos::PaxosReplica>(
          sim_, *net_, paxos_pid(s, i), "pcpaxos" + std::to_string(paxos_pid(s, i)),
          popt, [raw](Slot slot, const sim::AnyMessage& cmd) { raw->apply(slot, cmd); });
      server->attach_paxos(paxos.get());
      sim_.add_process(server.get());
      sim_.add_process(paxos.get());
      servers_.push_back(std::move(server));
      paxoses_.push_back(std::move(paxos));
    }
    leader_[s] = server_pid(s, 0);
    epoch_[s] = 1;
  }
  // Install the full routing table at every server.
  for (auto& server : servers_) {
    for (const auto& [s, l] : leader_) server->set_shard_leader(s, l);
  }
}

ProcessId PcCluster::server_pid(ShardId s, std::size_t idx) const {
  return kServerBase + s * kShardStride + static_cast<ProcessId>(idx);
}

ProcessId PcCluster::paxos_pid(ShardId s, std::size_t idx) const {
  return kServerBase + s * kShardStride + kPaxosOffset + static_cast<ProcessId>(idx);
}

Participant& PcCluster::server(ShardId s, std::size_t idx) {
  return server_by_pid(server_pid(s, idx));
}

Participant& PcCluster::server_by_pid(ProcessId pid) {
  for (auto& sv : servers_) {
    if (sv->id() == pid) return *sv;
  }
  throw std::out_of_range("no pc server with pid " + std::to_string(pid));
}

std::vector<ProcessId> PcCluster::shard_servers(ShardId s) const {
  std::vector<ProcessId> out;
  for (std::size_t i = 0; i < options_.shard_size; ++i) out.push_back(server_pid(s, i));
  return out;
}

ProcessId PcCluster::paxos_twin(ProcessId server) const {
  return server + kPaxosOffset;
}

configsvc::ShardConfig PcCluster::current_config(ShardId s) const {
  configsvc::ShardConfig cfg;
  cfg.epoch = epoch_.at(s);
  cfg.members = shard_servers(s);
  cfg.leader = leader_.at(s);
  return cfg;
}

ProcessId PcCluster::leader_server(ShardId s) const { return leader_.at(s); }

ProcessId PcCluster::coordinator_for(const tcs::Payload& payload) const {
  std::vector<ShardId> parts = shard_map_.shards_of(payload);
  assert(!parts.empty());
  return leader_.at(parts.front());
}

PcClient& PcCluster::add_client() {
  ProcessId pid = kClientBase + static_cast<ProcessId>(clients_.size());
  auto c = std::make_unique<PcClient>(sim_, *net_, pid, &history_);
  sim_.add_process(c.get());
  clients_.push_back(std::move(c));
  return *clients_.back();
}

void PcCluster::crash_server(ProcessId server) {
  sim_.crash(server);
  sim_.crash(paxos_twin(server));
}

void PcCluster::elect_leader(ShardId s, ProcessId new_leader) {
  server_by_pid(new_leader).paxos().start_election();
  leader_[s] = new_leader;
  ++epoch_[s];
  // Repoint the routing tables (in a real deployment clients discover this
  // via the Paxos leader hint; the harness shortcuts that).
  for (auto& sv : servers_) sv->set_shard_leader(s, new_leader);
}

void PcCluster::fail_over(ShardId s, std::size_t new_leader_idx) {
  // Crash the current leader pair, then elect the chosen replica.
  crash_server(leader_.at(s));
  elect_leader(s, server_pid(s, new_leader_idx));
}

TerminationStats PcCluster::termination_stats() const {
  TerminationStats total;
  for (const auto& sv : servers_) total += sv->termination_stats();
  return total;
}

std::optional<tcs::Csn> PcCluster::snapshot_read(
    const std::vector<ObjectId>& objects, Duration staleness_bound,
    std::uint64_t member_hint) {
  (void)member_hint;  // leader-gated: there is exactly one eligible server
  if (objects.empty()) return std::nullopt;
  std::set<ShardId> shards;
  for (ObjectId o : objects) shards.insert(shard_map_.shard_of(o));
  std::map<ShardId, Participant*> serving;
  tcs::Csn snapshot = tcs::watermark_at(sim_.now());
  for (ShardId s : shards) {
    ProcessId pid = leader_.at(s);
    if (sim_.crashed(pid)) return std::nullopt;
    Participant& sv = server_by_pid(pid);
    if (!sv.can_serve_reads()) return std::nullopt;  // electing or lagging
    serving[s] = &sv;
    snapshot = std::min(snapshot, sv.read_watermark());
  }
  if (staleness_bound > 0 && snapshot.ts + staleness_bound < sim_.now()) {
    return std::nullopt;
  }
  tcs::SnapshotReadRecord rec;
  rec.time = sim_.now();
  rec.snapshot = snapshot;
  rec.staleness_bound = staleness_bound;
  for (ObjectId o : objects) {
    Participant* sv = serving.at(shard_map_.shard_of(o));
    std::optional<store::VersionedValue> v = sv->snapshot_store().read_at(o, snapshot);
    if (!v) return std::nullopt;
    rec.observations.push_back({o, v->version, v->value});
  }
  history_.record_snapshot_read(std::move(rec));
  return snapshot;
}

std::string PcCluster::verify() const {
  std::string problems;
  auto conflicting = history_.conflicting_decisions();
  if (!conflicting.empty()) {
    problems += "conflicting client decisions for " +
                std::to_string(conflicting.size()) + " transaction(s)\n";
  }
  // Replicated-state-machine + atomicity: every server that applied a
  // decision for t (same shard or not) applied the same one, and it matches
  // what clients observed.  This is exactly the agreement obligation the
  // early client reply leans on: the externalized outcome is a function of
  // chosen votes, so any later decide application must equal it.
  std::map<TxnId, tcs::Decision> global;
  for (const auto& sv : servers_) {
    for (const auto& [t, d] : sv->decided_txns()) {
      auto [it, inserted] = global.emplace(t, d);
      if (!inserted && it->second != d) {
        problems += "txn" + std::to_string(t) + " decided both " +
                    std::string(tcs::to_string(it->second)) + " and " +
                    std::string(tcs::to_string(d)) + " across servers\n";
      }
    }
  }
  for (const auto& [t, d] : global) {
    auto observed = history_.decision_of(t);
    if (observed.has_value() && *observed != d) {
      problems += "txn" + std::to_string(t) + " externalized as " +
                  std::string(tcs::to_string(*observed)) + " but applied as " +
                  std::string(tcs::to_string(d)) + "\n";
    }
  }
  return problems;
}

}  // namespace ratc::pc
