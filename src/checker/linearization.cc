#include "checker/linearization.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_set>

namespace ratc::checker {

namespace {

struct SearchState {
  std::size_t n = 0;
  // must_precede[i]: bitmask of transactions that must be linearized before i
  // (real-time order).
  std::vector<std::uint64_t> must_precede;
  // may_follow[i][j]: placing i after already-placed j keeps i's commit legal.
  std::vector<std::vector<bool>> may_follow;
  std::unordered_set<std::uint64_t> failed;
  std::vector<int> order;

  bool dfs(std::uint64_t placed, std::uint64_t all) {
    if (placed == all) return true;
    if (failed.count(placed)) return false;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t bit = 1ULL << i;
      if (placed & bit) continue;
      if ((must_precede[i] & ~placed) != 0) continue;  // a predecessor missing
      bool legal = true;
      for (std::size_t j = 0; j < n && legal; ++j) {
        if ((placed >> j) & 1) legal = may_follow[i][j];
      }
      if (!legal) continue;
      order.push_back(static_cast<int>(i));
      if (dfs(placed | bit, all)) return true;
      order.pop_back();
    }
    failed.insert(placed);
    return false;
  }
};

}  // namespace

LinearizationResult check_linearization(const tcs::History& history,
                                        const tcs::Certifier& certifier) {
  LinearizationResult result;
  std::vector<TxnId> committed = history.committed_txns();
  std::size_t n = committed.size();
  if (n > 62) {
    result.error = "too many committed transactions for exact linearization check";
    return result;
  }
  if (n == 0) {
    result.ok = true;
    return result;
  }

  std::map<TxnId, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index[committed[i]] = i;

  // Real-time order: decide(t) ≺_h certify(t')  ⟹  t before t'.
  std::map<TxnId, Time> certify_time;
  std::map<TxnId, Time> decide_time;
  for (const auto& ev : history.events()) {
    if (ev.kind == tcs::HistoryEvent::Kind::kCertify) {
      certify_time[ev.txn] = ev.time;
    } else if (decide_time.count(ev.txn) == 0) {
      decide_time[ev.txn] = ev.time;
    }
  }

  SearchState st;
  st.n = n;
  st.must_precede.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      // j must precede i if decide(j) happened before certify(i).
      if (decide_time[committed[j]] < certify_time[committed[i]]) {
        st.must_precede[i] |= 1ULL << j;
      }
    }
  }

  st.may_follow.assign(n, std::vector<bool>(n, true));
  for (std::size_t i = 0; i < n; ++i) {
    const tcs::Payload* li = history.payload_of(committed[i]);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const tcs::Payload* lj = history.payload_of(committed[j]);
      st.may_follow[i][j] =
          certifier.against_committed(*lj, *li) == tcs::Decision::kCommit;
    }
  }

  std::uint64_t all = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
  if (!st.dfs(0, all)) {
    result.error = "no legal linearization of the committed projection exists";
    return result;
  }
  result.ok = true;
  for (int idx : st.order) result.order.push_back(committed[static_cast<std::size_t>(idx)]);
  return result;
}

}  // namespace ratc::checker
