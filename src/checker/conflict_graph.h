// Conflict-graph serializability checker for end-to-end histories over the
// versioned store.
//
// For committed transactions with versioned read/write sets, build the
// direct serialization graph with
//   * wr edges: t' installed the version t read,
//   * ww edges: version order per object,
//   * rw anti-dependencies: t read a version later overwritten by t'',
//   * rt edges: real-time order (decide before certify).
// The history is serializable iff the graph is acyclic.  This is the
// classical MVSG condition and serves as an independent end-to-end oracle
// for the store + TCS pipeline (complements the TCS-level checkers).
#pragma once

#include <string>
#include <vector>

#include "tcs/history.h"

namespace ratc::checker {

struct ConflictGraphResult {
  bool ok = false;
  /// A witness cycle (transaction ids) when not ok.
  std::vector<TxnId> cycle;
  std::string error;
};

ConflictGraphResult check_conflict_graph(const tcs::History& history);

}  // namespace ratc::checker
