// Black-box checker for the TCS specification (paper Sec. 2).
//
// A history h is correct w.r.t. certification function f if the projection
// to committed transactions has a *legal linearization*: a sequential
// history with the same actions such that
//   * real-time order is respected: if decide(t) precedes certify(t') in h
//     then t is linearized before t', and
//   * every decision equals f applied to the payloads committed before it.
//
// The search is a DFS over prefixes with memoization of failed state sets
// (bitmask), exact for up to 62 committed transactions.  Distributivity of
// f lets legality be precomputed as a pairwise "may-follow" matrix.
#pragma once

#include <string>
#include <vector>

#include "tcs/certifier.h"
#include "tcs/history.h"

namespace ratc::checker {

struct LinearizationResult {
  bool ok = false;
  /// A witness legal linearization (committed transactions in order) when ok.
  std::vector<TxnId> order;
  std::string error;
};

/// Checks that `history`'s committed projection has a legal linearization
/// w.r.t. the (global) certification function induced by `certifier`.
LinearizationResult check_linearization(const tcs::History& history,
                                        const tcs::Certifier& certifier);

}  // namespace ratc::checker
