#include "checker/tcsll.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace ratc::checker {

namespace {

using tcs::Decision;

std::string key_str(TxnId t, ShardId s) {
  return "txn" + std::to_string(t) + "@s" + std::to_string(s);
}

}  // namespace

TcsLLResult check_tcsll(const TcsLLInput& input) {
  TcsLLResult result;
  auto fail = [&](std::string msg) { result.errors.push_back(std::move(msg)); };

  const tcs::History& h = *input.history;
  const tcs::ShardMap& sm = *input.shard_map;
  const tcs::Certifier& cert = *input.certifier;

  // Index records per shard, ordered by position, for (7), (10) and (12).
  std::map<ShardId, std::map<Slot, const ShardCertRecord*>> by_shard;
  for (const auto& [k, rec] : input.records) {
    auto [it, inserted] = by_shard[k.second].emplace(rec.pos, &rec);
    if (!inserted) {
      // (7): positions within a shard are unique across transactions.
      fail("(7) duplicate position " + std::to_string(rec.pos) + " at shard s" +
           std::to_string(k.second) + ": " + key_str(rec.txn, k.second) + " and " +
           key_str(it->second->txn, k.second));
    }
  }

  auto record_of = [&](TxnId t, ShardId s) -> const ShardCertRecord* {
    auto it = input.records.find({t, s});
    return it == input.records.end() ? nullptr : &it->second;
  };

  // The incarnation of (t, s) visible at epoch `at`: the latest complete
  // acceptance with epoch <= at.  nullptr means the transaction had no
  // acceptance by then — lost across a reconfiguration (Lemma A.1 excludes
  // it from the witness sets) or never accepted at all.
  auto incarnation_of = [&](TxnId t, ShardId s, Epoch at) -> const ShardCertRecord* {
    const ShardCertRecord* best = nullptr;
    for (auto it = input.incarnations.lower_bound({t, s, 0});
         it != input.incarnations.end(); ++it) {
      const auto& [kt, ks, ke] = it->first;
      if (kt != t || ks != s || ke > at) break;
      best = &it->second;
    }
    return best;
  };

  auto global_decision = [&](TxnId t) -> std::optional<Decision> {
    auto it = input.decided.find(t);
    if (it != input.decided.end()) return it->second;
    return h.decision_of(t);
  };

  // (6): d[t] is the meet of the shard votes; plus each client-visible
  // decision must agree with the meet.
  for (TxnId t : h.all_txns()) {
    auto d = h.decision_of(t);
    if (!d.has_value()) continue;  // incomplete history: no constraint
    const tcs::Payload* l = h.payload_of(t);
    Decision expected = Decision::kCommit;
    bool all_defined = true;
    for (ShardId s : sm.shards_of(*l)) {
      const ShardCertRecord* rec = record_of(t, s);
      if (rec == nullptr) {
        all_defined = false;
        fail("(6) decided " + key_str(t, s) + " has no accepted vote record");
        continue;
      }
      expected = meet(expected, rec->vote);
    }
    if (all_defined && *d != expected) {
      fail("(6) decision for txn" + std::to_string(t) + " is " + tcs::to_string(*d) +
           " but meet of shard votes is " + tcs::to_string(expected));
    }
  }

  // (8): payload matching.
  for (const auto& [k, rec] : input.records) {
    const tcs::Payload* l = h.payload_of(k.first);
    if (l == nullptr) {
      // Retry-created abort records for transactions the client never
      // certified cannot exist: certify always precedes any PREPARE.
      fail("(8) record " + key_str(k.first, k.second) + " for never-certified txn");
      continue;
    }
    tcs::Payload projected = sm.project(*l, k.second);
    if (rec.vote == Decision::kCommit) {
      if (!(rec.pload == projected)) {
        fail("(8) commit vote for " + key_str(k.first, k.second) +
             " with payload != l|s: " + rec.pload.to_string());
      }
    } else {
      if (!(rec.pload == projected) && !rec.pload.is_empty()) {
        fail("(8) abort vote for " + key_str(k.first, k.second) +
             " with payload neither l|s nor empty");
      }
    }
  }

  // (9), (10), (11): the vote is justified by its witness sets.
  for (const auto& [k, rec] : input.records) {
    auto [t, s] = k;
    // (11): every prepared witness with a defined position precedes t and
    // carried a commit vote.  Witnesses without a record were lost across a
    // reconfiguration (paper Sec. 3, "losing undecided transactions") and
    // are excluded, as in the proof of Lemma A.1.  With per-incarnation
    // records each witness is resolved to the incarnation its voter could
    // actually have seen — the latest acceptance at an epoch <= rec.epoch —
    // so a witness lost and later re-certified in a newer epoch is excluded
    // precisely, not by a blanket epoch guard.
    std::vector<const ShardCertRecord*> p_eff;
    for (TxnId tp : rec.prepared_against) {
      const ShardCertRecord* rp;
      if (!input.incarnations.empty()) {
        rp = incarnation_of(tp, s, rec.epoch);
        if (rp == nullptr) continue;  // lost (or only re-certified later)
      } else {
        // Hand-built input: only first-acceptance records are available.
        rp = record_of(tp, s);
        if (rp == nullptr) continue;  // lost transaction
        if (rp->pos >= rec.pos && rp->epoch > rec.epoch) continue;
      }
      if (rp->pos >= rec.pos) {
        fail("(11) prepared witness " + key_str(tp, s) + " at pos " +
             std::to_string(rp->pos) + " not before " + key_str(t, s) + " at pos " +
             std::to_string(rec.pos));
      } else if (rp->vote != Decision::kCommit) {
        fail("(11) prepared witness " + key_str(tp, s) + " has abort vote");
      } else {
        p_eff.push_back(rp);
      }
    }

    // (10): T_s[t] equals {committed with smaller pos} \ P_s[t].
    std::set<TxnId> t_set(rec.committed_against.begin(), rec.committed_against.end());
    std::set<TxnId> p_set(rec.prepared_against.begin(), rec.prepared_against.end());
    std::set<TxnId> rhs;
    for (const auto& [pos, other] : by_shard[s]) {
      if (pos >= rec.pos) break;
      auto d = global_decision(other->txn);
      if (d.has_value() && *d == Decision::kCommit && p_set.count(other->txn) == 0) {
        rhs.insert(other->txn);
      }
    }
    if (t_set != rhs) {
      std::ostringstream os;
      os << "(10) T_s mismatch for " << key_str(t, s) << ": recorded {";
      for (TxnId x : t_set) os << x << " ";
      os << "} expected {";
      for (TxnId x : rhs) os << x << " ";
      os << "}";
      fail(os.str());
    }

    // (9): d_s[t] ⊑ f_s(ploads(T_s), pload) ⊓ g_s(ploads(P_eff), pload).
    if (rec.vote == Decision::kCommit) {
      for (TxnId tc : rec.committed_against) {
        const ShardCertRecord* rc = record_of(tc, s);
        if (rc == nullptr) {
          fail("(9) committed witness " + key_str(tc, s) + " has no record");
          continue;
        }
        if (cert.against_committed(rc->pload, rec.pload) != Decision::kCommit) {
          fail("(9) commit vote for " + key_str(t, s) +
               " not justified against committed " + key_str(tc, s));
        }
      }
      for (const ShardCertRecord* rp : p_eff) {
        if (cert.against_prepared(rp->pload, rec.pload) != Decision::kCommit) {
          fail("(9) commit vote for " + key_str(t, s) +
               " not justified against prepared " + key_str(rp->txn, s));
        }
      }
    }
  }

  // (12): real-time order implies certification order on shared shards.
  std::map<TxnId, Time> certify_time, decide_time;
  for (const auto& ev : h.events()) {
    if (ev.kind == tcs::HistoryEvent::Kind::kCertify) {
      certify_time[ev.txn] = ev.time;
    } else if (decide_time.count(ev.txn) == 0) {
      decide_time[ev.txn] = ev.time;
    }
  }
  for (const auto& [s, slots] : by_shard) {
    std::vector<const ShardCertRecord*> recs;
    recs.reserve(slots.size());
    for (const auto& [pos, r] : slots) {
      (void)pos;
      recs.push_back(r);
    }
    for (std::size_t i = 0; i < recs.size(); ++i) {
      for (std::size_t j = 0; j < recs.size(); ++j) {
        if (i == j) continue;
        TxnId a = recs[i]->txn, b = recs[j]->txn;
        auto da = decide_time.find(a);
        auto cb = certify_time.find(b);
        if (da != decide_time.end() && cb != certify_time.end() && da->second < cb->second) {
          if (recs[i]->pos >= recs[j]->pos) {
            fail("(12) real-time order txn" + std::to_string(a) + " -> txn" +
                 std::to_string(b) + " violated at shard s" + std::to_string(s));
          }
        }
      }
    }
  }

  // (13): ≺rt ∪ ≺dec is acyclic.
  {
    std::vector<TxnId> txns = h.all_txns();
    std::map<TxnId, std::size_t> index;
    for (std::size_t i = 0; i < txns.size(); ++i) index[txns[i]] = i;
    std::vector<std::set<std::size_t>> adj(txns.size());
    // ≺rt edges.
    for (TxnId a : txns) {
      for (TxnId b : txns) {
        if (a == b) continue;
        auto da = decide_time.find(a);
        auto cb = certify_time.find(b);
        if (da != decide_time.end() && cb != certify_time.end() && da->second < cb->second) {
          adj[index[a]].insert(index[b]);
        }
      }
    }
    // ≺dec edges: t' ∈ T_s[t], or t' preceded t at s with a commit vote but
    // a global abort and t' ∉ P_s[t].
    for (const auto& [k, rec] : input.records) {
      auto [t, s] = k;
      for (TxnId tp : rec.committed_against) {
        if (index.count(tp)) adj[index[tp]].insert(index[t]);
      }
      std::set<TxnId> p_set(rec.prepared_against.begin(), rec.prepared_against.end());
      for (const auto& [pos, other] : by_shard[s]) {
        if (pos >= rec.pos) break;
        auto d = global_decision(other->txn);
        if (other->vote == Decision::kCommit && d.has_value() && *d == Decision::kAbort &&
            p_set.count(other->txn) == 0 && index.count(other->txn)) {
          adj[index[other->txn]].insert(index[t]);
        }
      }
    }
    // Cycle detection.
    enum class Mark { kWhite, kGrey, kBlack };
    std::vector<Mark> mark(txns.size(), Mark::kWhite);
    std::function<bool(std::size_t)> dfs = [&](std::size_t v) -> bool {
      mark[v] = Mark::kGrey;
      for (std::size_t w : adj[v]) {
        if (mark[w] == Mark::kGrey) return true;
        if (mark[w] == Mark::kWhite && dfs(w)) return true;
      }
      mark[v] = Mark::kBlack;
      return false;
    };
    for (std::size_t v = 0; v < txns.size(); ++v) {
      if (mark[v] == Mark::kWhite && dfs(v)) {
        fail("(13) ≺rt ∪ ≺dec contains a cycle");
        break;
      }
    }
  }

  result.ok = result.errors.empty();
  return result;
}

}  // namespace ratc::checker
