#include "checker/conflict_graph.h"

#include <algorithm>
#include <map>
#include <set>

namespace ratc::checker {

namespace {

enum class Mark { kWhite, kGrey, kBlack };

bool dfs_cycle(std::size_t v, const std::vector<std::set<std::size_t>>& adj,
               std::vector<Mark>& mark, std::vector<std::size_t>& stack,
               std::vector<std::size_t>& cycle) {
  mark[v] = Mark::kGrey;
  stack.push_back(v);
  for (std::size_t w : adj[v]) {
    if (mark[w] == Mark::kGrey) {
      auto it = std::find(stack.begin(), stack.end(), w);
      cycle.assign(it, stack.end());
      return true;
    }
    if (mark[w] == Mark::kWhite && dfs_cycle(w, adj, mark, stack, cycle)) return true;
  }
  stack.pop_back();
  mark[v] = Mark::kBlack;
  return false;
}

}  // namespace

ConflictGraphResult check_conflict_graph(const tcs::History& history) {
  ConflictGraphResult result;
  std::vector<TxnId> committed = history.committed_txns();
  std::size_t n = committed.size();
  std::map<TxnId, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index[committed[i]] = i;

  // Per object: committed writers keyed by installed version.
  std::map<ObjectId, std::map<Version, std::size_t>> writers;
  for (std::size_t i = 0; i < n; ++i) {
    const tcs::Payload* l = history.payload_of(committed[i]);
    for (const auto& w : l->writes) {
      auto [it, inserted] = writers[w.object].emplace(l->commit_version, i);
      if (!inserted && it->second != i) {
        result.error = "two committed transactions installed the same version of object " +
                       std::to_string(w.object);
        return result;
      }
    }
  }

  std::vector<std::set<std::size_t>> adj(n);

  // ww edges: version order per object.
  for (const auto& [obj, vers] : writers) {
    (void)obj;
    std::size_t prev = SIZE_MAX;
    for (const auto& [v, i] : vers) {
      (void)v;
      if (prev != SIZE_MAX && prev != i) adj[prev].insert(i);
      prev = i;
    }
  }

  // wr and rw edges.
  for (std::size_t i = 0; i < n; ++i) {
    const tcs::Payload* l = history.payload_of(committed[i]);
    for (const auto& r : l->reads) {
      auto wit = writers.find(r.object);
      if (wit == writers.end()) continue;
      const auto& vers = wit->second;
      // wr: the writer of the version read comes before the reader.
      auto exact = vers.find(r.version);
      if (exact != vers.end() && exact->second != i) adj[exact->second].insert(i);
      // rw: any writer of a later version comes after the reader.
      for (auto it = vers.upper_bound(r.version); it != vers.end(); ++it) {
        if (it->second != i) adj[i].insert(it->second);
      }
    }
  }

  // rt edges: decide(t) before certify(t').
  std::map<TxnId, Time> certify_time, decide_time;
  for (const auto& ev : history.events()) {
    if (ev.kind == tcs::HistoryEvent::Kind::kCertify) {
      certify_time[ev.txn] = ev.time;
    } else if (decide_time.count(ev.txn) == 0) {
      decide_time[ev.txn] = ev.time;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && decide_time[committed[i]] < certify_time[committed[j]]) {
        adj[i].insert(j);
      }
    }
  }

  std::vector<Mark> mark(n, Mark::kWhite);
  std::vector<std::size_t> stack, cycle;
  for (std::size_t v = 0; v < n; ++v) {
    if (mark[v] == Mark::kWhite && dfs_cycle(v, adj, mark, stack, cycle)) {
      for (std::size_t idx : cycle) result.cycle.push_back(committed[idx]);
      result.error = "serialization graph contains a cycle";
      return result;
    }
  }
  result.ok = true;
  return result;
}

}  // namespace ratc::checker
