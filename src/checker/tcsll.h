// Checker for the low-level specification TCS-LL (paper Fig. 6, Sec. A.2).
//
// The paper proves the commit protocols correct in two steps: (Lemma A.1)
// every protocol history satisfies TCS-LL, and (Lemma A.3) every TCS-LL
// history is correct w.r.t. f.  This checker validates the Lemma A.1 step
// directly on instrumented executions: the protocol monitor records, for
// every transaction t and shard s where t was *accepted* (all followers
// acknowledged the ACCEPT), its certification-order position pos_s[t], vote
// d_s[t], shard payload pload_s[t], and the witness sets T_s[t] (committed
// payloads the vote was computed against) and P_s[t] (prepared payloads).
// The checker then verifies constraints (6)-(13) of Figure 6.
//
// Unlike the exponential black-box linearization search, this check is
// polynomial and scales to histories with tens of thousands of
// transactions, which is what the randomized property tests use.
#pragma once

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/types.h"
#include "tcs/certifier.h"
#include "tcs/history.h"
#include "tcs/shard_map.h"

namespace ratc::checker {

/// Everything the protocol externalized about transaction t at shard s.
struct ShardCertRecord {
  TxnId txn = 0;
  ShardId shard = 0;
  Epoch epoch = 0;          ///< epoch of the first complete acceptance
  Slot pos = kNoSlot;       ///< pos_s[t]
  tcs::Decision vote = tcs::Decision::kAbort;  ///< d_s[t]
  tcs::Payload pload;       ///< pload_s[t]
  std::vector<TxnId> committed_against;  ///< T_s[t] as used at vote time
  std::vector<TxnId> prepared_against;   ///< P_s[t] as used at vote time
};

struct TcsLLInput {
  const tcs::History* history = nullptr;
  const tcs::ShardMap* shard_map = nullptr;
  const tcs::Certifier* certifier = nullptr;
  /// Accepted certification records, keyed by (txn, shard).
  std::map<std::pair<TxnId, ShardId>, ShardCertRecord> records;
  /// Every complete acceptance incarnation, keyed by (txn, shard, epoch).
  /// A transaction lost across a reconfiguration and later re-certified has
  /// one incarnation per epoch it was accepted in; constraint (11) resolves
  /// each prepared witness against the incarnation its voter could actually
  /// have seen (the latest one at an epoch <= the referring record's).
  /// Populated by the protocol monitors; when empty (hand-built inputs) the
  /// checker falls back to `records` with a coarser epoch guard.
  std::map<std::tuple<TxnId, ShardId, Epoch>, ShardCertRecord> incarnations;
  /// Global decisions the protocol sent in DECISION messages (a superset of
  /// what clients observed; used for constraint (10) when a client never
  /// learned a decision that was nevertheless reached).
  std::map<TxnId, tcs::Decision> decided;
};

struct TcsLLResult {
  bool ok = false;
  std::vector<std::string> errors;
  std::string summary() const {
    std::string out;
    for (const auto& e : errors) out += e + "\n";
    return out;
  }
};

TcsLLResult check_tcsll(const TcsLLInput& input);

}  // namespace ratc::checker
