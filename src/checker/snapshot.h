// Checker for snapshot-read histories: the linearization contract
// generalized to read-only transactions served at a CSN snapshot
// (Chockler & Gotsman's multi-shot reads-over-committed-prefix semantics).
//
// A served read R = (time, snapshot c, bound, observations) is correct iff
//   * every observed version was written by a committed transaction whose
//     csn is at or below c, with the observed value;
//   * the read misses nothing it was required to see: every committed
//     writer w of an observed object with csn(w) <= c whose first decide
//     preceded the read must have version <= the observed version (an
//     observed version 0 means no such writer may exist);
//   * a staleness bound b > 0 implies c.ts + b >= time.
//
// Globally, per-object version order must agree with csn order among the
// committed writers — the property that makes "latest version with
// csn <= c" the right store lookup.  Committed transactions without a
// carried csn are exempted from the mandatory-visibility rule (they cannot
// be placed against the snapshot) but still anchor observed values.
#pragma once

#include <string>

#include "tcs/history.h"

namespace ratc::checker {

struct SnapshotReadResult {
  bool ok = false;
  std::size_t reads_checked = 0;
  std::string error;
};

/// Validates every snapshot read recorded in `history` against its
/// committed writers.  A history with no reads passes trivially.
SnapshotReadResult check_snapshot_reads(const tcs::History& history);

}  // namespace ratc::checker
