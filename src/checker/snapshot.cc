#include "checker/snapshot.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

namespace ratc::checker {

namespace {

struct Writer {
  TxnId txn = 0;
  Version version = 0;
  Value value = 0;
  bool has_csn = false;
  tcs::Csn csn;
  Time first_decide = 0;
};

std::string describe(const Writer& w) {
  std::ostringstream os;
  os << "txn" << w.txn << " v" << w.version;
  if (w.has_csn) os << " csn=" << w.csn.to_string();
  return os.str();
}

}  // namespace

SnapshotReadResult check_snapshot_reads(const tcs::History& history) {
  SnapshotReadResult result;

  // Committed writers per object, version-ascending.
  std::map<ObjectId, std::vector<Writer>> writers;
  for (TxnId t : history.committed_txns()) {
    const tcs::Payload* p = history.payload_of(t);
    if (p == nullptr) continue;
    Writer w;
    w.txn = t;
    w.version = p->commit_version;
    if (auto csn = history.csn_of(t)) {
      w.has_csn = true;
      w.csn = *csn;
    }
    w.first_decide = history.first_decide_time(t).value_or(0);
    for (const auto& we : p->writes) {
      w.value = we.value;
      writers[we.object].push_back(w);
    }
  }
  // Certified transactions whose decision never reached the client boundary
  // (e.g. the decide message was lost to a partition).  Stores apply writes
  // only on a commit decision, so an observed version anchored by one of
  // these proves the system committed it — the history is merely incomplete.
  // No csn is known for them, so the snapshot-bound check does not apply.
  std::map<ObjectId, std::vector<Writer>> undecided;
  for (TxnId t : history.all_txns()) {
    if (history.decision_of(t).has_value()) continue;
    const tcs::Payload* p = history.payload_of(t);
    if (p == nullptr) continue;
    Writer w;
    w.txn = t;
    w.version = p->commit_version;
    for (const auto& we : p->writes) {
      w.value = we.value;
      undecided[we.object].push_back(w);
    }
  }

  for (auto& [obj, ws] : writers) {
    std::sort(ws.begin(), ws.end(),
              [](const Writer& a, const Writer& b) { return a.version < b.version; });
    // Version order must agree with csn order: the store's "latest version
    // with csn <= c" lookup is only right if higher versions carry higher
    // csns.
    const Writer* prev = nullptr;
    for (const Writer& w : ws) {
      if (prev != nullptr && prev->has_csn && w.has_csn &&
          prev->version < w.version && !(prev->csn < w.csn)) {
        result.error = "csn order inverts version order on object " +
                       std::to_string(obj) + ": " + describe(*prev) + " vs " +
                       describe(w);
        return result;
      }
      if (prev != nullptr && prev->version == w.version && prev->txn != w.txn) {
        result.error = "two committed writers of object " + std::to_string(obj) +
                       " version " + std::to_string(w.version) + ": txn" +
                       std::to_string(prev->txn) + " and txn" + std::to_string(w.txn);
        return result;
      }
      prev = &w;
    }
  }

  for (const tcs::SnapshotReadRecord& r : history.snapshot_reads()) {
    ++result.reads_checked;
    std::ostringstream where;
    where << "read at t=" << r.time << " snapshot=" << r.snapshot.to_string();
    if (r.staleness_bound > 0 && r.snapshot.ts + r.staleness_bound < r.time) {
      result.error = where.str() + " violates staleness bound " +
                     std::to_string(r.staleness_bound);
      return result;
    }
    for (const tcs::ReadObservation& obs : r.observations) {
      auto wit = writers.find(obs.object);
      const std::vector<Writer>* ws = wit == writers.end() ? nullptr : &wit->second;

      // Rule 1: an observed version must come from a committed writer at or
      // below the snapshot, with the observed value.
      if (obs.version != 0) {
        const Writer* match = nullptr;
        if (ws != nullptr) {
          for (const Writer& w : *ws) {
            if (w.version == obs.version) match = &w;
          }
        }
        if (match == nullptr) {
          // Two in-flight txns may both intend this version (at most one can
          // commit), so the anchor must match version AND value.
          auto uit = undecided.find(obs.object);
          if (uit != undecided.end()) {
            for (const Writer& w : uit->second) {
              if (w.version == obs.version && w.value == obs.value) match = &w;
            }
          }
        }
        if (match == nullptr) {
          result.error = where.str() + " observed object " +
                         std::to_string(obs.object) + " v" +
                         std::to_string(obs.version) + " with no committed writer";
          return result;
        }
        if (match->value != obs.value) {
          result.error = where.str() + " observed object " +
                         std::to_string(obs.object) + " v" +
                         std::to_string(obs.version) + " value " +
                         std::to_string(obs.value) + " but " + describe(*match) +
                         " wrote " + std::to_string(match->value);
          return result;
        }
        if (match->has_csn && !(match->csn <= r.snapshot)) {
          result.error = where.str() + " observed " + describe(*match) +
                         " from above the snapshot";
          return result;
        }
      }

      // Rule 2: nothing mandatory is missing.  A committed writer with
      // csn <= snapshot whose decision was externalized before the read
      // must be visible (its version <= the observed one).
      if (ws != nullptr) {
        for (const Writer& w : *ws) {
          if (!w.has_csn || !(w.csn <= r.snapshot)) continue;
          if (w.first_decide >= r.time) continue;
          if (w.version > obs.version) {
            result.error = where.str() + " missed mandatory writer " + describe(w) +
                           " of object " + std::to_string(obs.object) +
                           " (observed v" + std::to_string(obs.version) + ")";
            return result;
          }
        }
      }
    }
  }

  result.ok = true;
  return result;
}

}  // namespace ratc::checker
