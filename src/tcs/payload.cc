#include "tcs/payload.h"

#include <set>
#include <sstream>

namespace ratc::tcs {

bool Payload::well_formed() const {
  std::set<ObjectId> read_objs;
  for (const auto& r : reads) {
    if (!read_objs.insert(r.object).second) return false;  // duplicate read entry
    if (commit_version <= r.version && !writes.empty()) return false;  // Vc must exceed reads
  }
  std::set<ObjectId> write_objs;
  for (const auto& w : writes) {
    if (!write_objs.insert(w.object).second) return false;  // duplicate write entry
    if (read_objs.count(w.object) == 0) return false;       // writes must be read first
  }
  return true;
}

std::string Payload::to_string() const {
  std::ostringstream os;
  os << "R{";
  for (std::size_t i = 0; i < reads.size(); ++i) {
    if (i) os << ",";
    os << "x" << reads[i].object << "@v" << reads[i].version;
  }
  os << "} W{";
  for (std::size_t i = 0; i < writes.size(); ++i) {
    if (i) os << ",";
    os << "x" << writes[i].object << "=" << writes[i].value;
  }
  os << "} Vc=" << commit_version;
  return os.str();
}

}  // namespace ratc::tcs
