// Commit sequence numbers (CSNs) for the read-only snapshot fast path.
//
// Every committed transaction t gets a csn(t) = <ts, txn>: ts is the maximum
// of the leader-stamped prepare timestamps over t's participant shards (the
// point after which every participant had t prepared), and txn breaks ties.
// CSNs totally order committed transactions consistently with the
// certification order per object: a writer of version v+1 read version v,
// which was only observable after v's writer committed — strictly after that
// writer's every prepare stamp (see checker/snapshot.h for the enforced
// property).
//
// A replica's *watermark* is the largest snapshot it can serve locally:
// one below the smallest prepare timestamp among its prepared-undecided
// slots (any future commit lands above it), or "now" when nothing is in
// flight.  The exemplar shape is the postgres-scaleout csn_log (xid -> CSN
// mapping enabling consistent cross-shard snapshots).
#pragma once

#include <limits>
#include <string>

#include "common/types.h"

namespace ratc::tcs {

inline constexpr TxnId kMaxTxnId = std::numeric_limits<TxnId>::max();

struct Csn {
  Time ts = 0;
  TxnId txn = 0;

  friend bool operator==(const Csn&, const Csn&) = default;
  friend bool operator<(const Csn& a, const Csn& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.txn < b.txn;
  }
  friend bool operator<=(const Csn& a, const Csn& b) { return a < b || a == b; }
  friend bool operator>(const Csn& a, const Csn& b) { return b < a; }
  friend bool operator>=(const Csn& a, const Csn& b) { return b <= a; }

  std::string to_string() const {
    return "<" + std::to_string(ts) + "," + std::to_string(txn) + ">";
  }
};

/// Watermark just below the given prepare timestamp: every csn whose ts is
/// strictly below `prepare_ts` compares <= the result.
inline Csn watermark_below(Time prepare_ts) {
  if (prepare_ts == 0) return Csn{0, 0};
  return Csn{prepare_ts - 1, kMaxTxnId};
}

/// Watermark admitting everything stamped up to and including `now`.
inline Csn watermark_at(Time now) { return Csn{now, kMaxTxnId}; }

}  // namespace ratc::tcs
