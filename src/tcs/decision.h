// Decisions and the meet operator (paper Sec. 2).
#pragma once

#include <string>

namespace ratc::tcs {

enum class Decision { kAbort = 0, kCommit = 1 };

/// The ⊓ operator: commit ⊓ commit = commit, anything ⊓ abort = abort.
inline Decision meet(Decision a, Decision b) {
  return (a == Decision::kCommit && b == Decision::kCommit) ? Decision::kCommit
                                                            : Decision::kAbort;
}

/// The ⊑ order used by constraint (9) of Figure 6: abort ⊑ everything,
/// commit ⊑ commit.
inline bool leq(Decision a, Decision b) {
  return a == Decision::kAbort || b == Decision::kCommit;
}

inline const char* to_string(Decision d) {
  return d == Decision::kCommit ? "commit" : "abort";
}

}  // namespace ratc::tcs
