// Transaction payloads (paper Sec. 2): the result of a transaction's
// optimistic execution submitted for certification.
//
// A payload is a triple <R, W, Vc>:
//   * read set R: objects with the versions that were read (one per object),
//   * write set W: objects with the values to be written (one per object),
//   * commit version Vc: the version assigned to all writes, required to be
//     higher than every version read.
// The paper requires that every object written has also been read; the
// store layer's executor guarantees it and `well_formed()` checks it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace ratc::tcs {

struct ReadEntry {
  ObjectId object = 0;
  Version version = 0;
  friend bool operator==(const ReadEntry&, const ReadEntry&) = default;
};

struct WriteEntry {
  ObjectId object = 0;
  Value value = 0;
  friend bool operator==(const WriteEntry&, const WriteEntry&) = default;
};

struct Payload {
  std::vector<ReadEntry> reads;
  std::vector<WriteEntry> writes;
  Version commit_version = 0;

  /// The distinguished empty payload ε (paper Sec. 2).
  bool is_empty() const { return reads.empty() && writes.empty(); }

  /// Version at which `object` was read, if it was.
  std::optional<Version> read_version(ObjectId object) const {
    for (const auto& r : reads) {
      if (r.object == object) return r.version;
    }
    return std::nullopt;
  }

  bool reads_object(ObjectId object) const { return read_version(object).has_value(); }

  bool writes_object(ObjectId object) const {
    return std::any_of(writes.begin(), writes.end(),
                       [&](const WriteEntry& w) { return w.object == object; });
  }

  /// Paper Sec. 2 well-formedness: one version per object read, one value
  /// per object written, writes ⊆ reads, Vc greater than every read version.
  bool well_formed() const;

  /// Approximate serialized size; drives the byte-count statistics of the
  /// replication-cost experiment (E4).
  std::size_t wire_size() const {
    return 16 + reads.size() * 16 + writes.size() * 16;
  }

  std::string to_string() const;

  friend bool operator==(const Payload&, const Payload&) = default;
};

/// Returns the empty payload ε.
inline Payload empty_payload() { return Payload{}; }

}  // namespace ratc::tcs
