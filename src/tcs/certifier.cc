#include "tcs/certifier.h"

#include <stdexcept>

namespace ratc::tcs {

Decision SerializabilityCertifier::against_committed(const Payload& committed,
                                                     const Payload& l) const {
  // Paper (2): commit iff none of the versions in R have been overwritten:
  // ∀(x,v) ∈ R. (x,_) ∈ W' ⟹ V'c ≤ v.
  for (const auto& r : l.reads) {
    if (committed.writes_object(r.object) && committed.commit_version > r.version) {
      return Decision::kAbort;
    }
  }
  return Decision::kCommit;
}

Decision SerializabilityCertifier::against_prepared(const Payload& prepared,
                                                    const Payload& l) const {
  // Paper g_s: abort if (i) l read an object written by a prepared
  // transaction, or (ii) l writes an object read by a prepared transaction.
  for (const auto& r : l.reads) {
    if (prepared.writes_object(r.object)) return Decision::kAbort;
  }
  for (const auto& w : l.writes) {
    if (prepared.reads_object(w.object)) return Decision::kAbort;
  }
  return Decision::kCommit;
}

Decision SnapshotIsolationCertifier::against_committed(const Payload& committed,
                                                       const Payload& l) const {
  // First-committer-wins on write-write conflicts: abort if a committed
  // transaction installed a newer version of an object l is writing.
  // Written objects are always read (payload well-formedness), so the read
  // version is l's snapshot of the object.
  for (const auto& w : l.writes) {
    if (!committed.writes_object(w.object)) continue;
    auto snapshot = l.read_version(w.object);
    if (!snapshot.has_value() || committed.commit_version > *snapshot) {
      return Decision::kAbort;
    }
  }
  return Decision::kCommit;
}

Decision SnapshotIsolationCertifier::against_prepared(const Payload& prepared,
                                                      const Payload& l) const {
  for (const auto& w : l.writes) {
    if (prepared.writes_object(w.object)) return Decision::kAbort;
  }
  return Decision::kCommit;
}

std::unique_ptr<Certifier> make_certifier(const std::string& name) {
  if (name == "serializability") return std::make_unique<SerializabilityCertifier>();
  if (name == "snapshot-isolation") return std::make_unique<SnapshotIsolationCertifier>();
  throw std::invalid_argument("unknown certifier: " + name);
}

}  // namespace ratc::tcs
