// TCS histories (paper Sec. 2): sequences of certify(t, l) and decide(t, d)
// actions recorded at the client boundary, fed to the checkers.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "tcs/decision.h"
#include "tcs/payload.h"

namespace ratc::tcs {

struct HistoryEvent {
  enum class Kind { kCertify, kDecide } kind = Kind::kCertify;
  Time time = 0;
  TxnId txn = 0;
  Payload payload;              // for kCertify
  Decision decision = Decision::kAbort;  // for kDecide
};

class History {
 public:
  void record_certify(Time time, TxnId txn, Payload payload);

  /// Records a decide action.  Duplicate decide events for the same
  /// transaction are recorded too (they occur only in the deliberately
  /// unsafe Figure 4a mode); `conflicting_decisions()` finds contradictory
  /// ones.
  void record_decide(Time time, TxnId txn, Decision d);

  const std::vector<HistoryEvent>& events() const { return events_; }

  bool certified(TxnId t) const { return payloads_.count(t) > 0; }
  std::optional<Decision> decision_of(TxnId t) const;
  const Payload* payload_of(TxnId t) const;

  /// Every certify has a matching decide (paper: "complete" history).
  bool complete() const;

  std::vector<TxnId> all_txns() const;
  std::vector<TxnId> committed_txns() const;
  std::size_t committed_count() const { return committed_txns().size(); }
  std::size_t aborted_count() const;

  /// Transactions for which two decide events with different decisions were
  /// externalized — a violation of the TCS spec (Invariant 4b at the client
  /// boundary).
  std::vector<TxnId> conflicting_decisions() const;

  std::string to_string() const;

 private:
  std::vector<HistoryEvent> events_;
  std::map<TxnId, Payload> payloads_;
  std::map<TxnId, Decision> first_decision_;
};

}  // namespace ratc::tcs
