// TCS histories (paper Sec. 2): sequences of certify(t, l) and decide(t, d)
// actions recorded at the client boundary, fed to the checkers — extended
// with snapshot-read records (read-only transactions served at a CSN
// snapshot with zero certification messages; checker/snapshot.h validates
// them against the committed writers).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "tcs/csn.h"
#include "tcs/decision.h"
#include "tcs/payload.h"

namespace ratc::tcs {

struct HistoryEvent {
  enum class Kind { kCertify, kDecide } kind = Kind::kCertify;
  Time time = 0;
  TxnId txn = 0;
  Payload payload;              // for kCertify
  Decision decision = Decision::kAbort;  // for kDecide
};

/// One object observation of a snapshot read (version 0 = object absent at
/// the snapshot).
struct ReadObservation {
  ObjectId object = 0;
  Version version = 0;
  Value value = 0;
  friend bool operator==(const ReadObservation&, const ReadObservation&) = default;
};

/// One served read-only transaction: every observation was resolved at one
/// consistent snapshot, locally, on a replica whose watermark covered it.
struct SnapshotReadRecord {
  Time time = 0;                ///< when the read was served
  Csn snapshot;                 ///< the snapshot it executed at
  Duration staleness_bound = 0; ///< 0 = unbounded (client accepted any lag)
  std::vector<ReadObservation> observations;
};

class History {
 public:
  void record_certify(Time time, TxnId txn, Payload payload);

  /// Records a decide action.  Duplicate decide events for the same
  /// transaction are recorded too (they occur only in the deliberately
  /// unsafe Figure 4a mode); `conflicting_decisions()` finds contradictory
  /// ones.  `csn` is the writer's commit sequence number when the decision
  /// is a commit and the stack carries one (ts 0 = unknown).
  void record_decide(Time time, TxnId txn, Decision d, Csn csn = {});

  /// Records a served read-only snapshot transaction.
  void record_snapshot_read(SnapshotReadRecord read);

  const std::vector<HistoryEvent>& events() const { return events_; }
  const std::vector<SnapshotReadRecord>& snapshot_reads() const {
    return snapshot_reads_;
  }

  bool certified(TxnId t) const { return payloads_.count(t) > 0; }
  std::optional<Decision> decision_of(TxnId t) const;
  const Payload* payload_of(TxnId t) const;

  /// Commit sequence number externalized with t's first commit decision
  /// (nullopt if t never committed or no csn was carried).
  std::optional<Csn> csn_of(TxnId t) const;
  /// Time of t's first decide event (nullopt if undecided).
  std::optional<Time> first_decide_time(TxnId t) const;

  /// Every certify has a matching decide (paper: "complete" history).
  bool complete() const;

  std::vector<TxnId> all_txns() const;
  std::vector<TxnId> committed_txns() const;
  std::size_t committed_count() const { return committed_txns().size(); }
  std::size_t aborted_count() const;

  /// Transactions for which two decide events with different decisions were
  /// externalized — a violation of the TCS spec (Invariant 4b at the client
  /// boundary).
  std::vector<TxnId> conflicting_decisions() const;

  std::string to_string() const;

 private:
  std::vector<HistoryEvent> events_;
  std::vector<SnapshotReadRecord> snapshot_reads_;
  std::map<TxnId, Payload> payloads_;
  std::map<TxnId, Decision> first_decision_;
  std::map<TxnId, Time> first_decide_time_;
  std::map<TxnId, Csn> csns_;
};

}  // namespace ratc::tcs
