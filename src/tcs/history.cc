#include "tcs/history.h"

#include <set>
#include <sstream>

namespace ratc::tcs {

void History::record_certify(Time time, TxnId txn, Payload payload) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kCertify;
  ev.time = time;
  ev.txn = txn;
  ev.payload = payload;
  events_.push_back(std::move(ev));
  payloads_.emplace(txn, std::move(payload));
}

void History::record_decide(Time time, TxnId txn, Decision d, Csn csn) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kDecide;
  ev.time = time;
  ev.txn = txn;
  ev.decision = d;
  events_.push_back(ev);
  first_decision_.emplace(txn, d);
  first_decide_time_.emplace(txn, time);
  if (d == Decision::kCommit && csn.ts != 0) csns_.emplace(txn, csn);
}

void History::record_snapshot_read(SnapshotReadRecord read) {
  snapshot_reads_.push_back(std::move(read));
}

std::optional<Decision> History::decision_of(TxnId t) const {
  auto it = first_decision_.find(t);
  if (it == first_decision_.end()) return std::nullopt;
  return it->second;
}

const Payload* History::payload_of(TxnId t) const {
  auto it = payloads_.find(t);
  return it == payloads_.end() ? nullptr : &it->second;
}

std::optional<Csn> History::csn_of(TxnId t) const {
  auto it = csns_.find(t);
  if (it == csns_.end()) return std::nullopt;
  return it->second;
}

std::optional<Time> History::first_decide_time(TxnId t) const {
  auto it = first_decide_time_.find(t);
  if (it == first_decide_time_.end()) return std::nullopt;
  return it->second;
}

bool History::complete() const {
  for (const auto& [t, _] : payloads_) {
    if (first_decision_.count(t) == 0) return false;
  }
  return true;
}

std::vector<TxnId> History::all_txns() const {
  std::vector<TxnId> out;
  out.reserve(payloads_.size());
  for (const auto& [t, _] : payloads_) out.push_back(t);
  return out;
}

std::vector<TxnId> History::committed_txns() const {
  std::vector<TxnId> out;
  for (const auto& [t, d] : first_decision_) {
    if (d == Decision::kCommit) out.push_back(t);
  }
  return out;
}

std::size_t History::aborted_count() const {
  std::size_t n = 0;
  for (const auto& [t, d] : first_decision_) {
    if (d == Decision::kAbort) ++n;
  }
  return n;
}

std::vector<TxnId> History::conflicting_decisions() const {
  std::set<TxnId> bad;
  for (const auto& ev : events_) {
    if (ev.kind != HistoryEvent::Kind::kDecide) continue;
    auto it = first_decision_.find(ev.txn);
    if (it != first_decision_.end() && it->second != ev.decision) bad.insert(ev.txn);
  }
  return {bad.begin(), bad.end()};
}

std::string History::to_string() const {
  std::ostringstream os;
  for (const auto& ev : events_) {
    if (ev.kind == HistoryEvent::Kind::kCertify) {
      os << "t=" << ev.time << " certify(txn" << ev.txn << ", " << ev.payload.to_string()
         << ")\n";
    } else {
      os << "t=" << ev.time << " decide(txn" << ev.txn << ", "
         << tcs::to_string(ev.decision) << ")\n";
    }
  }
  return os.str();
}

}  // namespace ratc::tcs
