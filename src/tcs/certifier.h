// Certification functions (paper Sec. 2), parametric in the isolation level.
//
// The paper requires f, f_s, g_s to be *distributive*: the decision against
// a set of payloads is the meet of the decisions against its elements
// (requirement (1)).  We bake distributivity in by construction: concrete
// certifiers implement only the pairwise checks
//     against_committed(l', l)   —  f_s({l'}, l)
//     against_prepared(l', l)    —  g_s({l'}, l)
// and the set versions fold with the ⊓ operator.  The global function f and
// the shard-local f_s are the same pairwise check applied to unprojected or
// projected payloads — which is exactly the matching condition (3).
#pragma once

#include <memory>
#include <vector>

#include "tcs/decision.h"
#include "tcs/payload.h"

namespace ratc::tcs {

class Certifier {
 public:
  virtual ~Certifier() = default;

  /// f_s({committed}, l): may l commit given this previously committed
  /// payload?
  virtual Decision against_committed(const Payload& committed, const Payload& l) const = 0;

  /// g_s({prepared}, l): may l commit given this payload prepared to commit
  /// but not yet decided?  Required to be no weaker than against_committed
  /// (requirement (4)) and commutative in the sense of requirement (5).
  virtual Decision against_prepared(const Payload& prepared, const Payload& l) const = 0;

  virtual const char* name() const = 0;

  /// f_s(L, l) folded with ⊓ over the set.
  template <typename Iterable>
  Decision committed_set(const Iterable& committed, const Payload& l) const {
    for (const auto& c : committed) {
      if (against_committed(deref(c), l) == Decision::kAbort) return Decision::kAbort;
    }
    return Decision::kCommit;
  }

  /// g_s(L, l) folded with ⊓ over the set.
  template <typename Iterable>
  Decision prepared_set(const Iterable& prepared, const Payload& l) const {
    for (const auto& p : prepared) {
      if (against_prepared(deref(p), l) == Decision::kAbort) return Decision::kAbort;
    }
    return Decision::kCommit;
  }

  /// The vote computation of Figure 1 line 12: f_s(L1, l) ⊓ g_s(L2, l).
  template <typename I1, typename I2>
  Decision vote(const I1& committed, const I2& prepared, const Payload& l) const {
    return meet(committed_set(committed, l), prepared_set(prepared, l));
  }

 private:
  static const Payload& deref(const Payload& p) { return p; }
  static const Payload& deref(const Payload* p) { return *p; }
};

/// Classical backward-validation serializability (paper Sec. 2 running
/// example):
///  * f_s aborts l if a committed transaction overwrote (with a higher
///    version) any object l read;
///  * g_s aborts l if it read an object a prepared transaction writes, or
///    writes an object a prepared transaction read (lock-conflict shape).
class SerializabilityCertifier final : public Certifier {
 public:
  Decision against_committed(const Payload& committed, const Payload& l) const override;
  Decision against_prepared(const Payload& prepared, const Payload& l) const override;
  const char* name() const override { return "serializability"; }
};

/// Snapshot isolation: only write-write conflicts abort.
///  * f_s aborts l if a committed transaction wrote one of l's written
///    objects at a version above the version l read (first-committer-wins,
///    using read versions as the snapshot);
///  * g_s aborts l if its write set intersects a prepared write set.
/// Satisfies requirements (4) and (5); see tests/tcs_certifier_test.cc.
class SnapshotIsolationCertifier final : public Certifier {
 public:
  Decision against_committed(const Payload& committed, const Payload& l) const override;
  Decision against_prepared(const Payload& prepared, const Payload& l) const override;
  const char* name() const override { return "snapshot-isolation"; }
};

std::unique_ptr<Certifier> make_certifier(const std::string& name);

}  // namespace ratc::tcs
