// Mapping of objects to shards and payload projection l|s (paper Sec. 2).
//
// shards(t) in the paper is a function of the transaction id; in this
// implementation the participant set is derived from the payload (the
// shards storing the objects it accesses) and then carried inside protocol
// messages, which is what lets `retry` work at any replica that has the
// transaction prepared.
#pragma once

#include <set>
#include <vector>

#include "common/types.h"
#include "tcs/payload.h"

namespace ratc::tcs {

class ShardMap {
 public:
  explicit ShardMap(std::uint32_t num_shards) : num_shards_(num_shards) {}

  std::uint32_t num_shards() const { return num_shards_; }

  ShardId shard_of(ObjectId object) const {
    return static_cast<ShardId>(object % num_shards_);
  }

  /// The projection l|s: the parts of the payload relevant to shard s.
  /// For s ∉ shards(l) this is ε, as the paper requires.
  Payload project(const Payload& l, ShardId s) const {
    Payload out;
    out.commit_version = l.commit_version;
    for (const auto& r : l.reads) {
      if (shard_of(r.object) == s) out.reads.push_back(r);
    }
    for (const auto& w : l.writes) {
      if (shard_of(w.object) == s) out.writes.push_back(w);
    }
    return out;
  }

  /// shards(t): the sorted set of shards that must certify the payload.
  std::vector<ShardId> shards_of(const Payload& l) const {
    std::set<ShardId> s;
    for (const auto& r : l.reads) s.insert(shard_of(r.object));
    for (const auto& w : l.writes) s.insert(shard_of(w.object));
    return {s.begin(), s.end()};
  }

 private:
  std::uint32_t num_shards_;
};

}  // namespace ratc::tcs
