// Assembles the paper's commit stack — configuration service, shards of
// f+1 replicas plus spares, optional invariant monitor — on *any*
// rt::Runtime.  The runtime-agnostic sibling of commit::Cluster: Cluster
// additionally owns a Simulator and the sim-only harness levers
// (fault injectors, await_active_epoch, controllers); this class owns only
// the processes, so the same assembly runs on the deterministic simulator
// or on rt::ThreadedRuntime's real threads.
//
// The caller wires the monitor into the transport's observer tap
// (ThreadedRuntime::add_observer / sim::Network::add_observer) — the seam
// deliberately keeps observation a transport concern.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "commit/monitor.h"
#include "commit/replica.h"
#include "configsvc/simple_service.h"
#include "rt/runtime.h"
#include "tcs/certifier.h"
#include "tcs/shard_map.h"

namespace ratc::rt {

class CommitSystem {
 public:
  struct Options {
    std::uint32_t num_shards = 2;
    std::size_t shard_size = 2;  ///< f+1 replicas per shard
    std::size_t spares_per_shard = 0;
    std::string isolation = "serializability";
    /// Nonzero enables automatic coordinator recovery at replicas.
    Duration retry_timeout = 0;
    Duration probe_patience = 5;
    bool enable_monitor = true;
  };

  // Same pid scheme as commit::Cluster, so traces and tests read alike.
  static constexpr ProcessId kReplicaBase = 100;
  static constexpr ProcessId kShardStride = 100;
  static constexpr ProcessId kSpareOffset = 50;
  static constexpr ProcessId kClientBase = 5000;
  static constexpr ProcessId kCsPid = 9000;

  CommitSystem(Runtime& rt, Options options);

  std::uint32_t num_shards() const { return options_.num_shards; }
  ProcessId replica_pid(ShardId s, std::size_t idx) const;
  commit::Replica& replica(ShardId s, std::size_t idx);
  /// Initial members of every shard — the processes a load generator may
  /// pick as transaction coordinators.
  std::vector<ProcessId> coordinators() const;
  ProcessId leader_pid(ShardId s) const { return replica_pid(s, 0); }

  /// Null when Options::enable_monitor is false.  Thread-safe by
  /// construction (commit::Monitor locks internally); remember to register
  /// it as a transport observer.
  commit::Monitor* monitor() { return monitor_.get(); }
  const tcs::ShardMap& shard_map() const { return shard_map_; }
  const tcs::Certifier& certifier() const { return *certifier_; }
  configsvc::SimpleConfigService& config_service() { return *cs_; }
  const Options& options() const { return options_; }

 private:
  std::vector<ProcessId> allocate_spares(ShardId shard, std::size_t n);
  void release_spares(ShardId shard, const std::vector<ProcessId>& spares);

  Runtime& rt_;
  Options options_;
  tcs::ShardMap shard_map_;
  std::unique_ptr<tcs::Certifier> certifier_;
  std::unique_ptr<commit::Monitor> monitor_;
  std::unique_ptr<configsvc::SimpleConfigService> cs_;
  std::vector<std::unique_ptr<commit::Replica>> replicas_;
  /// Reconfiguration may run on any worker thread, so the fresh-spare pool
  /// is locked (commit::Cluster gets this for free from sim determinism).
  std::mutex spares_mu_;
  std::map<ShardId, std::vector<ProcessId>> free_spares_;
};

}  // namespace ratc::rt
