// Closed/open-loop workload driver over the runtime seam.
//
// Spawns commit::Client processes (round-robin over the given coordinator
// pids) and drives them entirely *from their own workers*: the first
// submission is a 0-delay timer on the client's process, and every
// subsequent submission happens inside the client's decision callback — so
// each client's state (history, payload generator, rng, windows) is only
// ever touched by one thread and needs no locks.  The only cross-thread
// state is the aggregate decided/committed counters the main thread polls.
//
// Closed loop (pace == 0): each client keeps `window` transactions in
// flight, topping up batch-by-batch as decisions land.  Open loop
// (pace > 0): each client fires one batch every `pace` ticks regardless of
// outstanding decisions.
//
// Payloads come from store::ContendedPayloadGen — the same contended
// read-write mix the sim workloads use — over a keyspace that can stretch
// into the millions of objects.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "commit/client.h"
#include "common/random.h"
#include "rt/runtime.h"
#include "store/stack_harness.h"
#include "tcs/history.h"
#include "tcs/shard_map.h"

namespace ratc::rt {

class LoadGen {
 public:
  struct Options {
    std::size_t clients = 8;
    std::size_t txns_per_client = 100;
    /// Transactions submitted per CERTIFY round (1 = scalar submit).
    std::size_t batch_size = 1;
    /// Closed-loop window in *batches* per client.
    std::size_t window = 1;
    /// Open loop when nonzero: one batch per client every `pace` ticks.
    Duration pace = 0;
    /// Object universe of the contended payload mix.
    ObjectId keyspace = 1 << 20;
    std::uint64_t seed = 1;
    ProcessId first_pid = 5000;  ///< CommitSystem::kClientBase
  };

  LoadGen(Runtime& rt, std::vector<ProcessId> coordinators, Options options);
  ~LoadGen();

  /// Schedules every client's first submission (a 0-delay timer on the
  /// client's own process).  Call before or after the runtime starts.
  void start();

  // --- progress (safe from any thread) -------------------------------------

  std::size_t target_txns() const { return options_.clients * options_.txns_per_client; }
  std::size_t decided() const { return decided_.load(std::memory_order_acquire); }
  std::size_t committed() const { return committed_.load(std::memory_order_acquire); }
  bool done() const { return decided() >= target_txns(); }

  // --- results (only after the runtime stopped) -----------------------------

  /// certify-to-decide latencies in runtime time units (µs on the threaded
  /// runtime), one entry per decided transaction.
  std::vector<Duration> latencies() const;
  /// All clients' histories merged into one, ordered by event time — input
  /// for the history checkers.
  tcs::History merged_history() const;
  std::size_t submitted() const;

 private:
  struct ClientState {
    std::unique_ptr<tcs::History> history;
    std::unique_ptr<commit::Client> proc;
    std::unique_ptr<Rng> rng;
    std::unique_ptr<store::ContendedPayloadGen> gen;
    ProcessId coordinator = kNoProcess;
    std::size_t submitted = 0;  ///< txns handed to certify so far
    std::size_t inflight = 0;   ///< undecided txns
  };

  void pump(ClientState& c);
  void start_pacer(ClientState& c);
  void submit_batch(ClientState& c);

  Runtime& rt_;
  Options options_;
  std::vector<ProcessId> coordinators_;
  std::vector<std::unique_ptr<ClientState>> clients_;
  std::atomic<std::uint64_t> next_txn_{1};
  std::atomic<std::size_t> decided_{0};
  std::atomic<std::size_t> committed_{0};
};

}  // namespace ratc::rt
