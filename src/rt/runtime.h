// The runtime seam (ROADMAP "a real concurrent runtime behind the sim
// seam"): the narrow surface that `sim::Simulator` + `sim::Network` expose
// to protocol code, abstracted so the exact same replica/certifier/frontend
// logic runs on either the deterministic discrete-event simulator (the
// testing twin) or a real-time multithreaded executor.
//
// Contract (both implementations):
//  * `now()` is monotonically non-decreasing.  On the sim it is virtual
//    ticks; on ThreadedRuntime it is microseconds of steady-clock wall time.
//  * `send()` delivers messages FIFO per (sender, receiver) pair, drops
//    messages from/to crashed processes, and never delivers to a process
//    concurrently with another of its handlers or timers.
//  * `schedule_for(owner, ...)` timers are discarded at fire time if the
//    owner has crashed (`Simulator::crash` semantics).
//  * A process's handlers and timers are serialized with respect to each
//    other; cross-process memory is NOT synchronized on the threaded
//    runtime — protocol code must communicate only through messages.
#pragma once

#include <functional>

#include "common/random.h"
#include "common/types.h"
#include "sim/message.h"

namespace ratc::sim {
class Process;
}  // namespace ratc::sim

namespace ratc::rt {

class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Current time: virtual ticks (sim) or µs since runtime start (threaded).
  virtual Time now() const = 0;

  /// Randomness for the calling context.  The sim returns the one seeded
  /// stream (determinism); the threaded runtime returns a per-worker stream.
  virtual Rng& rng() = 0;

  /// Registers a process (non-owning).  The threaded runtime only accepts
  /// spawns before `start()`.
  virtual void spawn(sim::Process* p) = 0;

  /// Crash-stops a process: pending deliveries and timers for it are
  /// discarded at fire/delivery time, and it will never execute again.
  virtual void crash(ProcessId id) = 0;
  virtual bool crashed(ProcessId id) const = 0;

  /// Schedules `fn` at now()+delay regardless of process liveness.
  virtual void schedule(Duration delay, std::function<void()> fn) = 0;

  /// Schedules `fn` at now()+delay unless `owner` has crashed by then.
  /// Use for all process-local timers; `fn` runs on `owner`'s executor.
  virtual void schedule_for(ProcessId owner, Duration delay, std::function<void()> fn) = 0;

  /// Sends a message (FIFO per channel).  No-op if the sender has crashed.
  virtual void send(ProcessId from, ProcessId to, sim::AnyMessage msg) = 0;

  /// Convenience: wrap-and-send.
  template <typename T>
  void send_msg(ProcessId from, ProcessId to, T msg) {
    send(from, to, sim::AnyMessage(std::move(msg)));
  }
};

}  // namespace ratc::rt
