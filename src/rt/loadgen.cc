#include "rt/loadgen.h"

#include <algorithm>
#include <cassert>

namespace ratc::rt {

LoadGen::LoadGen(Runtime& rt, std::vector<ProcessId> coordinators, Options options)
    : rt_(rt), options_(options), coordinators_(std::move(coordinators)) {
  assert(!coordinators_.empty());
  if (options_.batch_size == 0) options_.batch_size = 1;
  if (options_.window == 0) options_.window = 1;
  clients_.reserve(options_.clients);
  for (std::size_t i = 0; i < options_.clients; ++i) {
    auto c = std::make_unique<ClientState>();
    c->history = std::make_unique<tcs::History>();
    c->proc = std::make_unique<commit::Client>(
        rt_, options_.first_pid + static_cast<ProcessId>(i), c->history.get());
    c->rng = std::make_unique<Rng>(options_.seed * 6364136223846793005ULL + i + 1);
    c->gen = std::make_unique<store::ContendedPayloadGen>(*c->rng, options_.keyspace);
    c->coordinator = coordinators_[i % coordinators_.size()];
    ClientState* cp = c.get();
    // Decision callback: runs on the client's worker — the same thread as
    // every submission, so ClientState needs no lock.
    c->proc->on_decision = [this, cp](TxnId txn, tcs::Decision d) {
      if (d == tcs::Decision::kCommit) {
        if (const tcs::Payload* p = cp->history->payload_of(txn)) {
          cp->gen->observe_commit(*p);
        }
        committed_.fetch_add(1, std::memory_order_acq_rel);
      }
      decided_.fetch_add(1, std::memory_order_acq_rel);
      if (cp->inflight > 0) --cp->inflight;
      if (options_.pace == 0) pump(*cp);
    };
    rt_.spawn(c->proc.get());
    clients_.push_back(std::move(c));
  }
}

LoadGen::~LoadGen() = default;

void LoadGen::start() {
  for (auto& c : clients_) {
    ClientState* cp = c.get();
    if (options_.pace == 0) {
      rt_.schedule_for(cp->proc->id(), 0, [this, cp] { pump(*cp); });
    } else {
      rt_.schedule_for(cp->proc->id(), 0, [this, cp] { start_pacer(*cp); });
    }
  }
}

// Open loop: a self-rearming pacer, blind to outstanding decisions.
void LoadGen::start_pacer(ClientState& c) {
  if (c.submitted >= options_.txns_per_client) return;
  submit_batch(c);
  ClientState* cp = &c;
  rt_.schedule_for(c.proc->id(), options_.pace, [this, cp] { start_pacer(*cp); });
}

void LoadGen::pump(ClientState& c) {
  while (c.submitted < options_.txns_per_client &&
         c.inflight < options_.window * options_.batch_size) {
    submit_batch(c);
  }
}

void LoadGen::submit_batch(ClientState& c) {
  std::size_t n = std::min(options_.batch_size,
                           options_.txns_per_client - c.submitted);
  if (n == 0) return;
  std::vector<std::pair<TxnId, tcs::Payload>> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TxnId txn = next_txn_.fetch_add(1, std::memory_order_relaxed);
    batch.emplace_back(txn, c.gen->next());
  }
  c.submitted += n;
  c.inflight += n;
  c.proc->certify_batch_remote(c.coordinator, batch);
}

std::vector<Duration> LoadGen::latencies() const {
  std::vector<Duration> out;
  for (const auto& c : clients_) {
    for (TxnId txn : c->history->all_txns()) {
      if (auto l = c->proc->latency(txn)) out.push_back(*l);
    }
  }
  return out;
}

tcs::History LoadGen::merged_history() const {
  // Gather every client's events and replay them in time order.
  std::vector<const tcs::HistoryEvent*> events;
  for (const auto& c : clients_) {
    for (const tcs::HistoryEvent& e : c->history->events()) events.push_back(&e);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const tcs::HistoryEvent* a, const tcs::HistoryEvent* b) {
                     return a->time < b->time;
                   });
  tcs::History merged;
  for (const tcs::HistoryEvent* e : events) {
    if (e->kind == tcs::HistoryEvent::Kind::kCertify) {
      merged.record_certify(e->time, e->txn, e->payload);
    } else {
      merged.record_decide(e->time, e->txn, e->decision);
    }
  }
  return merged;
}

std::size_t LoadGen::submitted() const {
  std::size_t n = 0;
  for (const auto& c : clients_) n += c->submitted;
  return n;
}

}  // namespace ratc::rt
