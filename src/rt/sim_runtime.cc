#include "rt/sim_runtime.h"

#include <cassert>
#include <utility>

#include "sim/network.h"
#include "sim/simulator.h"

namespace ratc::rt {

Time SimRuntime::now() const { return sim_.now(); }

Rng& SimRuntime::rng() { return sim_.rng(); }

void SimRuntime::spawn(sim::Process* p) { sim_.add_process(p); }

void SimRuntime::crash(ProcessId id) { sim_.crash(id); }

bool SimRuntime::crashed(ProcessId id) const { return sim_.crashed(id); }

void SimRuntime::schedule(Duration delay, std::function<void()> fn) {
  sim_.schedule(delay, std::move(fn));
}

void SimRuntime::schedule_for(ProcessId owner, Duration delay, std::function<void()> fn) {
  sim_.schedule_for(owner, delay, std::move(fn));
}

void SimRuntime::send(ProcessId from, ProcessId to, sim::AnyMessage msg) {
  assert(net_ != nullptr && "send through a network-less SimRuntime");
  net_->send(from, to, std::move(msg));
}

}  // namespace ratc::rt
