// MPSC inbox of the threaded runtime: every process owns one, all workers
// may produce into it, only the owning worker consumes.
//
// Two interchangeable queues behind one interface (ThreadedRuntime::Options
// picks; rt_test runs the FIFO and stress suites against both):
//  * mutex mode — std::mutex + std::deque, unbounded.  The simple baseline.
//  * lock-free mode — a bounded Vyukov-style ring (per-cell sequence
//    numbers).  The fast path: producers and the consumer synchronize only
//    through the cell seqlocks.  A full ring exerts *backpressure*: push()
//    spin-yields until a slot frees.  Blocking (rather than spilling to an
//    overflow list) is what preserves per-sender FIFO order — a message may
//    never overtake an earlier one from the same sender.  The capacity must
//    therefore exceed the workload's in-flight burst per process; if every
//    worker ever blocked pushing simultaneously the system would deadlock,
//    so size generously (default 1<<16 envelopes ≈ cheap, envelopes are two
//    words + a shared_ptr).
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/types.h"
#include "sim/message.h"

namespace ratc::rt {

struct Envelope {
  ProcessId from = kNoProcess;
  sim::AnyMessage msg;
};

class Inbox {
 public:
  struct Options {
    bool lock_free = true;
    std::size_t capacity = 1 << 16;  ///< rounded up to a power of two
  };

  explicit Inbox(Options options) : lock_free_(options.lock_free) {
    if (lock_free_) {
      std::size_t cap = 1;
      while (cap < options.capacity) cap <<= 1;
      mask_ = cap - 1;
      cells_ = std::make_unique<Cell[]>(cap);
      for (std::size_t i = 0; i < cap; ++i) {
        cells_[i].seq.store(i, std::memory_order_relaxed);
      }
    }
  }

  Inbox(const Inbox&) = delete;
  Inbox& operator=(const Inbox&) = delete;

  /// Multi-producer push.  Lock-free mode spin-yields while the ring is
  /// full (backpressure; see file comment).
  void push(Envelope e) {
    if (!lock_free_) {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(e));
      return;
    }
    while (!try_push_ring(e)) std::this_thread::yield();
  }

  /// Single-consumer pop; returns false when (momentarily) empty.
  bool try_pop(Envelope& out) {
    if (!lock_free_) {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) return false;
      out = std::move(queue_.front());
      queue_.pop_front();
      return true;
    }
    Cell& cell = cells_[head_ & mask_];
    // The consumer is unique, so head_ needs no atomicity — only the cell
    // handoff does.
    if (cell.seq.load(std::memory_order_acquire) != head_ + 1) return false;
    out = std::move(*cell.item);
    cell.item.reset();
    cell.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

  /// Approximate in lock-free mode (exact when no producer is mid-push).
  bool empty() const {
    if (!lock_free_) {
      std::lock_guard<std::mutex> lock(mu_);
      return queue_.empty();
    }
    return cells_[head_ & mask_].seq.load(std::memory_order_acquire) != head_ + 1;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    std::optional<Envelope> item;
  };

  bool try_push_ring(Envelope& e) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      std::size_t seq = cell.seq.load(std::memory_order_acquire);
      std::intptr_t dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.item.emplace(std::move(e));
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  const bool lock_free_;

  // Mutex mode.
  mutable std::mutex mu_;
  std::deque<Envelope> queue_;

  // Lock-free mode.
  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> tail_{0};  ///< next enqueue position (producers)
  std::size_t head_ = 0;              ///< next dequeue position (consumer only)
};

}  // namespace ratc::rt
