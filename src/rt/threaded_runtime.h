// rt::Runtime on real threads and real clocks — the production side of the
// runtime seam.
//
// Execution model:
//  * N worker threads; every process is pinned to one worker (round-robin
//    at spawn).  A process's handlers and timers all run on its worker, so
//    per-process state needs no locking — exactly the guarantee protocol
//    code already assumed under the simulator.
//  * One MPSC Inbox per process (rt/inbox.h): any worker produces, the
//    owning worker consumes.  Per-(sender,receiver) FIFO holds because a
//    sender enqueues from one thread and the ring/deque preserves order.
//  * Per-worker timer min-heap; schedule_for() routes to the owner's
//    worker.  now() is steady-clock microseconds since construction;
//    protocol Durations (sim ticks) are scaled by Options::tick_us.
//  * crash() flips an atomic flag; deliveries and timers for a crashed
//    process are discarded at fire time, matching Simulator::crash.
//  * NetworkObservers (the commit::Monitor tap) fire on_send on the
//    *sender's* thread and on_deliver on the *receiver's* thread — every
//    process-state read the monitor performs is of the acting process, so a
//    thread-safe observer needs only its own internal lock.
//
// Determinism does NOT hold here: interleavings are scheduler-dependent.
// The sim twin owns reproducibility; this runtime owns wall-clock truth.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "rt/inbox.h"
#include "rt/runtime.h"
#include "sim/network.h"

namespace ratc::rt {

class ThreadedRuntime final : public Runtime {
 public:
  struct Options {
    std::size_t threads = 4;
    /// One protocol Duration tick = this many microseconds of real time
    /// (timer granularity of retries, FD periods, probe patience...).
    Duration tick_us = 100;
    bool lock_free_inbox = true;
    std::size_t inbox_capacity = 1 << 16;
    std::uint64_t seed = 1;
  };

  explicit ThreadedRuntime(Options options);
  ~ThreadedRuntime() override;

  // --- Runtime seam ---------------------------------------------------------

  Time now() const override;
  /// Worker threads get their own seeded stream; other threads share the
  /// setup stream (single-threaded use only).
  Rng& rng() override;
  /// Only legal before start().
  void spawn(sim::Process* p) override;
  void crash(ProcessId id) override;
  bool crashed(ProcessId id) const override;
  void schedule(Duration delay, std::function<void()> fn) override;
  void schedule_for(ProcessId owner, Duration delay, std::function<void()> fn) override;
  void send(ProcessId from, ProcessId to, sim::AnyMessage msg) override;

  // --- lifecycle ------------------------------------------------------------

  /// Non-owning; observers must be thread-safe (see file comment) and must
  /// be added before start().
  void add_observer(sim::NetworkObserver* obs) { observers_.push_back(obs); }

  void start();
  /// Graceful shutdown: workers finish the handler they are in, remaining
  /// queued messages and timers are dropped, threads are joined.  Safe to
  /// call twice; the destructor calls it.
  void stop();
  bool running() const { return running_; }

  // --- stats ----------------------------------------------------------------

  std::uint64_t delivered_count() const { return delivered_.load(); }
  std::uint64_t dropped_count() const { return dropped_.load(); }
  std::size_t worker_count() const { return workers_.size(); }

 private:
  struct ProcessRecord {
    sim::Process* proc = nullptr;
    std::size_t worker = 0;
    std::atomic<bool> crashed{false};
    std::unique_ptr<Inbox> inbox;
  };

  struct Timer {
    Time at = 0;
    std::uint64_t seq = 0;
    ProcessId owner = kNoProcess;
    std::function<void()> fn;
  };
  struct TimerOrder {  // min-heap by (at, seq)
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    /// Pending-wakeup / parked flags.  seq_cst on both sides makes the
    /// classic store-then-load-the-other-flag handshake safe: a producer
    /// that finds waiting == false is guaranteed the worker saw signaled
    /// before parking, so the mutex + notify can be skipped entirely on the
    /// hot path.
    std::atomic<bool> signaled{false};
    std::atomic<bool> waiting{false};
    std::vector<Timer> timers;      // heap, guarded by mu
    std::vector<ProcessRecord*> procs;
    std::unique_ptr<Rng> rng;
    std::thread thread;
  };

  ProcessRecord* find(ProcessId id) const;
  void wake(std::size_t w);
  void worker_loop(std::size_t index);
  /// Pops due timers (deadline <= now) into `out`; returns the next pending
  /// deadline or 0 if none.
  Time pop_due_timers(Worker& w, std::vector<Timer>& out);

  Options options_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unordered_map<ProcessId, std::unique_ptr<ProcessRecord>> procs_;
  std::vector<sim::NetworkObserver*> observers_;
  Rng setup_rng_;
  std::atomic<std::uint64_t> timer_seq_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::size_t next_worker_ = 0;  // round-robin spawn pinning
};

}  // namespace ratc::rt
