#include "rt/threaded_runtime.h"

#include <algorithm>
#include <cassert>

#include "sim/process.h"

namespace ratc::rt {

namespace {
/// Messages handled per process per scheduling round, so one chatty inbox
/// cannot starve timers or sibling processes on the same worker.
constexpr std::size_t kDrainBatch = 64;

/// Set by worker_loop for the lifetime of the thread; rng() falls back to
/// the setup stream on non-worker threads.
thread_local Rng* g_worker_rng = nullptr;
/// Which runtime+worker the current thread is, for the same-worker send
/// fast path (a handler enqueuing to its own worker needs no wake: the
/// worker re-scans its inboxes before parking after any round that did
/// work, and it is doing work right now).
thread_local const void* g_worker_rt = nullptr;
thread_local std::size_t g_worker_index = 0;
}  // namespace

ThreadedRuntime::ThreadedRuntime(Options options)
    : options_(options),
      epoch_(std::chrono::steady_clock::now()),
      setup_rng_(options.seed) {
  if (options_.threads == 0) options_.threads = 1;
  if (options_.tick_us == 0) options_.tick_us = 1;
  // Workers exist from construction (threads only from start()) so that
  // protocol constructors may already enqueue timers and sends.
  workers_.reserve(options_.threads);
  for (std::size_t i = 0; i < options_.threads; ++i) {
    auto w = std::make_unique<Worker>();
    w->rng = std::make_unique<Rng>(options_.seed * 7919 + i + 1);
    workers_.push_back(std::move(w));
  }
}

ThreadedRuntime::~ThreadedRuntime() { stop(); }

Time ThreadedRuntime::now() const {
  return static_cast<Time>(std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - epoch_)
                               .count());
}

Rng& ThreadedRuntime::rng() {
  if (g_worker_rng != nullptr) return *g_worker_rng;
  return setup_rng_;
}

void ThreadedRuntime::spawn(sim::Process* p) {
  assert(p != nullptr);
  assert(!running_ && "spawn is only legal before start()");
  assert(procs_.find(p->id()) == procs_.end() && "duplicate process id");
  auto rec = std::make_unique<ProcessRecord>();
  rec->proc = p;
  rec->worker = next_worker_;
  next_worker_ = (next_worker_ + 1) % workers_.size();
  rec->inbox = std::make_unique<Inbox>(
      Inbox::Options{options_.lock_free_inbox, options_.inbox_capacity});
  workers_[rec->worker]->procs.push_back(rec.get());
  procs_.emplace(p->id(), std::move(rec));
}

ThreadedRuntime::ProcessRecord* ThreadedRuntime::find(ProcessId id) const {
  // procs_ is frozen once start() runs, so concurrent reads are safe.
  auto it = procs_.find(id);
  return it == procs_.end() ? nullptr : it->second.get();
}

void ThreadedRuntime::crash(ProcessId id) {
  ProcessRecord* rec = find(id);
  if (rec == nullptr) return;
  rec->crashed.store(true, std::memory_order_release);
  wake(rec->worker);
}

bool ThreadedRuntime::crashed(ProcessId id) const {
  ProcessRecord* rec = find(id);
  return rec != nullptr && rec->crashed.load(std::memory_order_acquire);
}

void ThreadedRuntime::schedule(Duration delay, std::function<void()> fn) {
  schedule_for(kNoProcess, delay, std::move(fn));
}

void ThreadedRuntime::schedule_for(ProcessId owner, Duration delay,
                                   std::function<void()> fn) {
  ProcessRecord* rec = owner == kNoProcess ? nullptr : find(owner);
  std::size_t widx = rec != nullptr ? rec->worker : 0;
  Timer t;
  t.at = now() + delay * options_.tick_us;
  t.seq = timer_seq_.fetch_add(1, std::memory_order_relaxed);
  t.owner = owner;
  t.fn = std::move(fn);
  Worker& w = *workers_[widx];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.timers.push_back(std::move(t));
    std::push_heap(w.timers.begin(), w.timers.end(), TimerOrder{});
  }
  // Self-armed timers need no wake: the arming handler's round counts as
  // work, so the worker recomputes its park deadline before sleeping.
  if (g_worker_rt != this || g_worker_index != widx) wake(widx);
}

void ThreadedRuntime::send(ProcessId from, ProcessId to, sim::AnyMessage msg) {
  ProcessRecord* src = find(from);
  if (src != nullptr && src->crashed.load(std::memory_order_acquire)) return;
  Time t_now = now();
  // on_send runs on the *sender's* thread: any process state the observer
  // inspects belongs to the acting process (see threaded_runtime.h).
  for (auto* obs : observers_) obs->on_send(t_now, from, to, msg);
  ProcessRecord* dst = find(to);
  if (dst == nullptr || dst->crashed.load(std::memory_order_acquire)) {
    for (auto* obs : observers_) obs->on_drop(t_now, from, to, msg);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::size_t widx = dst->worker;
  dst->inbox->push(Envelope{from, std::move(msg)});
  if (g_worker_rt != this || g_worker_index != widx) wake(widx);
}

void ThreadedRuntime::wake(std::size_t widx) {
  Worker& w = *workers_[widx];
  w.signaled.store(true, std::memory_order_seq_cst);
  if (w.waiting.load(std::memory_order_seq_cst)) {
    // Taking the mutex before notifying closes the park/notify race: the
    // worker re-checks signaled under the mutex before it can sleep.
    std::lock_guard<std::mutex> lock(w.mu);
    w.cv.notify_one();
  }
}

void ThreadedRuntime::start() {
  assert(!running_);
  stop_.store(false, std::memory_order_release);
  running_ = true;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

void ThreadedRuntime::stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < workers_.size(); ++i) wake(i);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // In-flight mail and timers die with the runtime, like a sim that stops
  // stepping; account for the mail so stats stay truthful.
  Envelope env;
  for (auto& [id, rec] : procs_) {
    (void)id;
    while (rec->inbox->try_pop(env)) dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  running_ = false;
}

Time ThreadedRuntime::pop_due_timers(Worker& w, std::vector<Timer>& out) {
  Time t_now = now();
  std::lock_guard<std::mutex> lock(w.mu);
  while (!w.timers.empty() && w.timers.front().at <= t_now) {
    std::pop_heap(w.timers.begin(), w.timers.end(), TimerOrder{});
    out.push_back(std::move(w.timers.back()));
    w.timers.pop_back();
  }
  return w.timers.empty() ? 0 : w.timers.front().at;
}

void ThreadedRuntime::worker_loop(std::size_t index) {
  Worker& w = *workers_[index];
  g_worker_rng = w.rng.get();
  g_worker_rt = this;
  g_worker_index = index;
  std::vector<Timer> due;
  Envelope env;
  while (!stop_.load(std::memory_order_acquire)) {
    due.clear();
    Time next_deadline = pop_due_timers(w, due);
    bool did_work = false;
    for (Timer& t : due) {
      if (t.owner != kNoProcess) {
        ProcessRecord* rec = find(t.owner);
        if (rec == nullptr || rec->crashed.load(std::memory_order_acquire)) continue;
      }
      did_work = true;
      t.fn();
    }
    for (ProcessRecord* rec : w.procs) {
      std::size_t budget = kDrainBatch;
      while (budget-- > 0 && rec->inbox->try_pop(env)) {
        did_work = true;
        if (rec->crashed.load(std::memory_order_acquire)) {
          dropped_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        Time t_now = now();
        // on_deliver + on_message both run here, on the owner's worker —
        // the per-process serialization the protocol code relies on.
        for (auto* obs : observers_) {
          obs->on_deliver(t_now, env.from, rec->proc->id(), env.msg);
        }
        rec->proc->on_message(env.from, env.msg);
        delivered_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (did_work) continue;
    std::unique_lock<std::mutex> lock(w.mu);
    w.waiting.store(true, std::memory_order_seq_cst);
    // Anything enqueued after our drain pass set signaled before reading
    // waiting, so we either see it here or the producer sees waiting and
    // notifies under the mutex — no lost wakeups (see Worker).
    if (!w.signaled.load(std::memory_order_seq_cst)) {
      auto woken = [&] {
        return w.signaled.load(std::memory_order_acquire) ||
               stop_.load(std::memory_order_acquire);
      };
      if (next_deadline == 0) {
        w.cv.wait(lock, woken);
      } else {
        w.cv.wait_until(lock, epoch_ + std::chrono::microseconds(next_deadline),
                        woken);
      }
    }
    w.waiting.store(false, std::memory_order_seq_cst);
    w.signaled.store(false, std::memory_order_seq_cst);
  }
  g_worker_rng = nullptr;
  g_worker_rt = nullptr;
}

}  // namespace ratc::rt
