#include "rt/commit_system.h"

#include <stdexcept>

namespace ratc::rt {

CommitSystem::CommitSystem(Runtime& rt, Options options)
    : rt_(rt), options_(options), shard_map_(options.num_shards) {
  certifier_ = tcs::make_certifier(options_.isolation);
  if (options_.enable_monitor) monitor_ = std::make_unique<commit::Monitor>(rt_);

  cs_ = std::make_unique<configsvc::SimpleConfigService>(rt_, kCsPid);
  rt_.spawn(cs_.get());
  std::vector<ProcessId> cs_endpoints{kCsPid};

  // Initial configurations: epoch 1, first shard_size replicas, first is
  // leader — pre-activated, exactly as commit::Cluster bootstraps.
  std::map<ShardId, configsvc::ShardConfig> initial;
  for (ShardId s = 0; s < options_.num_shards; ++s) {
    configsvc::ShardConfig cfg;
    cfg.epoch = 1;
    for (std::size_t i = 0; i < options_.shard_size; ++i) {
      cfg.members.push_back(replica_pid(s, i));
    }
    cfg.leader = cfg.members.front();
    initial[s] = cfg;
    cs_->bootstrap(s, cfg);
    if (monitor_) monitor_->register_config(s, cfg);
  }

  const std::size_t per_shard = options_.shard_size + options_.spares_per_shard;
  for (ShardId s = 0; s < options_.num_shards; ++s) {
    commit::Replica::Options ropt;
    ropt.shard = s;
    ropt.shard_map = &shard_map_;
    ropt.certifier = certifier_.get();
    ropt.cs_endpoints = cs_endpoints;
    ropt.target_shard_size = options_.shard_size;
    ropt.probe_patience = options_.probe_patience;
    ropt.retry_timeout = options_.retry_timeout;
    ropt.monitor = monitor_.get();
    ropt.allocate_spares = [this](ShardId shard, std::size_t n) {
      return allocate_spares(shard, n);
    };
    ropt.release_spares = [this](ShardId shard,
                                 const std::vector<ProcessId>& spares) {
      release_spares(shard, spares);
    };
    for (std::size_t j = 0; j < options_.spares_per_shard; ++j) {
      free_spares_[s].push_back(replica_pid(s, options_.shard_size + j));
    }
    for (std::size_t i = 0; i < per_shard; ++i) {
      replicas_.push_back(
          std::make_unique<commit::Replica>(rt_, replica_pid(s, i), ropt));
    }
  }

  // Spawn index-major (all leaders, then the first followers, ...): the
  // threaded runtime pins processes round-robin in spawn order, and the
  // shard leaders are the hot certification processes — shard-major order
  // would stack every leader on the same worker whenever the per-shard
  // replica count divides the worker count.
  for (std::size_t i = 0; i < per_shard; ++i) {
    for (ShardId s = 0; s < options_.num_shards; ++s) {
      rt_.spawn(&replica(s, i));
    }
  }

  for (ShardId s = 0; s < options_.num_shards; ++s) {
    for (std::size_t i = 0; i < per_shard; ++i) {
      commit::Replica& r = replica(s, i);
      if (monitor_) monitor_->register_replica(&r);
      cs_->subscribe(r.id());
      if (i < options_.shard_size) {
        commit::Status st =
            (i == 0) ? commit::Status::kLeader : commit::Status::kFollower;
        r.bootstrap(st, initial);
      } else {
        r.bootstrap_spare(initial);
      }
    }
  }
}

ProcessId CommitSystem::replica_pid(ShardId s, std::size_t idx) const {
  ProcessId base = kReplicaBase + s * kShardStride;
  return idx < options_.shard_size
             ? base + static_cast<ProcessId>(idx)
             : base + kSpareOffset + static_cast<ProcessId>(idx - options_.shard_size);
}

commit::Replica& CommitSystem::replica(ShardId s, std::size_t idx) {
  ProcessId pid = replica_pid(s, idx);
  for (auto& r : replicas_) {
    if (r->id() == pid) return *r;
  }
  throw std::out_of_range("no replica with pid " + std::to_string(pid));
}

std::vector<ProcessId> CommitSystem::coordinators() const {
  std::vector<ProcessId> out;
  for (ShardId s = 0; s < options_.num_shards; ++s) {
    for (std::size_t i = 0; i < options_.shard_size; ++i) {
      out.push_back(replica_pid(s, i));
    }
  }
  return out;
}

std::vector<ProcessId> CommitSystem::allocate_spares(ShardId shard, std::size_t n) {
  std::lock_guard<std::mutex> lock(spares_mu_);
  std::vector<ProcessId> out;
  auto& pool = free_spares_[shard];
  while (!pool.empty() && out.size() < n) {
    out.push_back(pool.front());
    pool.erase(pool.begin());
  }
  return out;
}

void CommitSystem::release_spares(ShardId shard,
                                  const std::vector<ProcessId>& spares) {
  std::lock_guard<std::mutex> lock(spares_mu_);
  auto& pool = free_spares_[shard];
  pool.insert(pool.end(), spares.begin(), spares.end());
}

}  // namespace ratc::rt
