// rt::Runtime implemented by the deterministic simulator — the "testing
// twin" side of the runtime seam.  A SimRuntime is embedded in every
// `sim::Network` (with the send path wired) and in every `sim::Simulator`
// (network-less, for processes that never send through the seam), so all
// existing sim-typed harness code keeps working unchanged: protocol classes
// take `rt::Runtime&` and offer delegating compat constructors that grab
// `net.runtime()`.
#pragma once

#include "rt/runtime.h"

namespace ratc::sim {
class Simulator;
class Network;
}  // namespace ratc::sim

namespace ratc::rt {

class SimRuntime final : public Runtime {
 public:
  /// `net` may be null (Simulator-embedded instance); then `send` aborts.
  SimRuntime(sim::Simulator& sim, sim::Network* net) : sim_(sim), net_(net) {}

  Time now() const override;
  Rng& rng() override;
  void spawn(sim::Process* p) override;
  void crash(ProcessId id) override;
  bool crashed(ProcessId id) const override;
  void schedule(Duration delay, std::function<void()> fn) override;
  void schedule_for(ProcessId owner, Duration delay, std::function<void()> fn) override;
  void send(ProcessId from, ProcessId to, sim::AnyMessage msg) override;

  sim::Simulator& simulator() { return sim_; }
  /// Null on the Simulator-embedded instance.
  sim::Network* network() { return net_; }

 private:
  sim::Simulator& sim_;
  sim::Network* net_;
};

}  // namespace ratc::rt
