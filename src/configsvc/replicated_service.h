// Paxos-replicated configuration service (paper Sec. 2: "In practice, this
// service may be implemented using Paxos-like replication over 2f+1
// processes out of which at most f can fail, as done in systems such as
// Zookeeper").
//
// Each CS server is a pair of simulated processes: a *frontend* that speaks
// the CS request protocol, and a Paxos replica that sequences commands.
// The frontend whose Paxos replica currently leads wraps incoming requests
// into commands; every server applies the same command sequence to its copy
// of the configuration store; the leader's frontend sends replies and
// CONFIG_CHANGE notifications.  Duplicate submissions (possible across
// leader changes) are absorbed by remembering the reply per request id.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "configsvc/config.h"
#include "configsvc/messages.h"
#include "paxos/replica.h"
#include "sim/network.h"
#include "sim/process.h"

namespace ratc::configsvc {

/// Command replicated through Paxos: the original request plus its origin.
struct CsCommand {
  static constexpr const char* kName = "CS_CMD";
  ProcessId origin = kNoProcess;
  sim::AnyMessage request;
  std::size_t wire_size() const { return 8 + request.wire_size(); }
};

class CsServer : public sim::Process {
 public:
  CsServer(rt::Runtime& rt, ProcessId id);
  CsServer(sim::Simulator& sim, sim::Network& net, ProcessId id);

  void attach_paxos(paxos::PaxosReplica* paxos) { paxos_ = paxos; }
  paxos::PaxosReplica& paxos() { return *paxos_; }

  void bootstrap(ShardId shard, ShardConfig config);
  void subscribe(ProcessId p) { subscribers_.push_back(p); }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override;

  /// Paxos apply upcall.
  void apply(Slot slot, const sim::AnyMessage& cmd);

  const ShardConfig& last(ShardId shard) const;

 private:
  sim::AnyMessage execute(const sim::AnyMessage& request, bool* cas_ok,
                          ShardId* cas_shard);


  paxos::PaxosReplica* paxos_ = nullptr;
  std::map<ShardId, std::map<Epoch, ShardConfig>> configs_;
  std::map<ShardId, Epoch> last_epoch_;
  std::vector<ProcessId> subscribers_;
  /// Reply cache for at-most-once semantics across duplicate submissions.
  std::map<RequestId, sim::AnyMessage> replies_;
};

/// Owns the full 2f+1 server group; a construction/operations convenience
/// for tests and benches.
class ReplicatedConfigService {
 public:
  struct Options {
    std::size_t num_servers = 3;
    /// Process ids: frontends get first_pid..first_pid+n-1, Paxos replicas
    /// the following n ids.
    ProcessId first_pid = 9000;
  };

  ReplicatedConfigService(sim::Simulator& sim, sim::Network& net, Options options);

  /// Frontend process ids — what protocol processes use as CS endpoints.
  std::vector<ProcessId> endpoints() const;

  void bootstrap(ShardId shard, const ShardConfig& config);
  void subscribe(ProcessId p);

  std::size_t num_servers() const { return servers_.size(); }
  CsServer& server(std::size_t i) { return *servers_[i]; }
  paxos::PaxosReplica& paxos(std::size_t i) { return *paxoses_[i]; }

  /// Crashes server i (frontend and Paxos replica).
  void crash_server(sim::Simulator& sim, std::size_t i);

 private:
  std::vector<std::unique_ptr<CsServer>> servers_;
  std::vector<std::unique_ptr<paxos::PaxosReplica>> paxoses_;
};

}  // namespace ratc::configsvc
