// Configuration service message vocabulary (paper Sec. 3: compare_and_swap,
// get_last, get, and CONFIG_CHANGE notifications; Sec. 5 global variants).
#pragma once

#include "common/types.h"
#include "configsvc/config.h"

namespace ratc::configsvc {

using RequestId = std::uint64_t;

// --- per-shard interface (Sec. 3 protocol) --------------------------------

struct CsCas {
  static constexpr const char* kName = "CS_CAS";
  ShardId shard = 0;
  Epoch expected = kNoEpoch;
  ShardConfig next;
  RequestId req_id = 0;
  std::size_t wire_size() const { return 32 + next.members.size() * 4; }
};

struct CsCasReply {
  static constexpr const char* kName = "CS_CAS_REPLY";
  bool ok = false;
  RequestId req_id = 0;
};

struct CsGetLast {
  static constexpr const char* kName = "CS_GET_LAST";
  ShardId shard = 0;
  RequestId req_id = 0;
};

struct CsGetLastReply {
  static constexpr const char* kName = "CS_GET_LAST_REPLY";
  ShardConfig config;
  RequestId req_id = 0;
  std::size_t wire_size() const { return 24 + config.members.size() * 4; }
};

struct CsGet {
  static constexpr const char* kName = "CS_GET";
  ShardId shard = 0;
  Epoch epoch = kNoEpoch;
  RequestId req_id = 0;
};

struct CsGetReply {
  static constexpr const char* kName = "CS_GET_REPLY";
  bool found = false;
  ShardConfig config;
  RequestId req_id = 0;
  std::size_t wire_size() const { return 24 + config.members.size() * 4; }
};

/// Sent by the CS to processes in other shards when a new configuration is
/// persisted (handled at Fig. 1 line 67).
struct ConfigChange {
  static constexpr const char* kName = "CONFIG_CHANGE";
  ShardId shard = 0;
  ShardConfig config;
  std::size_t wire_size() const { return 16 + config.members.size() * 4; }
};

// --- global interface (Sec. 5 / Sec. C RDMA protocol) ----------------------

struct GcsCas {
  static constexpr const char* kName = "GCS_CAS";
  Epoch expected = kNoEpoch;
  GlobalConfig next;
  RequestId req_id = 0;
  std::size_t wire_size() const { return 32 + next.members.size() * 16; }
};

struct GcsCasReply {
  static constexpr const char* kName = "GCS_CAS_REPLY";
  bool ok = false;
  RequestId req_id = 0;
};

struct GcsGetLast {
  static constexpr const char* kName = "GCS_GET_LAST";
  RequestId req_id = 0;
};

struct GcsGetLastReply {
  static constexpr const char* kName = "GCS_GET_LAST_REPLY";
  GlobalConfig config;
  RequestId req_id = 0;
  std::size_t wire_size() const { return 24 + config.members.size() * 16; }
};

struct GcsGet {
  static constexpr const char* kName = "GCS_GET";
  Epoch epoch = kNoEpoch;
  RequestId req_id = 0;
};

struct GcsGetReply {
  static constexpr const char* kName = "GCS_GET_REPLY";
  bool found = false;
  GlobalConfig config;
  RequestId req_id = 0;
  std::size_t wire_size() const { return 24 + config.members.size() * 16; }
};

/// Sent by the global CS to subscribers when a new global configuration is
/// persisted — the Sec. 5 analogue of CONFIG_CHANGE, used by the
/// reconfiguration controllers (src/ctrl/) to track live membership.
struct GlobalConfigChange {
  static constexpr const char* kName = "GCONFIG_CHANGE";
  GlobalConfig config;
  std::size_t wire_size() const { return 16 + config.members.size() * 16; }
};

}  // namespace ratc::configsvc
