#include "configsvc/client.h"

namespace ratc::configsvc {

CsClient::CsClient(rt::Runtime& rt, ProcessId owner,
                   std::vector<ProcessId> endpoints, Duration retry_every)
    : rt_(rt),
      owner_(owner),
      endpoints_(std::move(endpoints)),
      retry_every_(retry_every) {}

CsClient::CsClient(sim::Simulator& sim, sim::Network& net, ProcessId owner,
                   std::vector<ProcessId> endpoints, Duration retry_every)
    : CsClient(net.runtime(), owner, std::move(endpoints), retry_every) {
  (void)sim;
}

void CsClient::cas(ShardId shard, Epoch expected, ShardConfig next,
                   std::function<void(bool)> cb) {
  RequestId id = fresh_id();
  CsCas req{shard, expected, std::move(next), id};
  dispatch(id, sim::AnyMessage(std::move(req)),
           [cb = std::move(cb)](const sim::AnyMessage& m) {
             cb(m.as<CsCasReply>()->ok);
           });
}

void CsClient::get_last(ShardId shard, std::function<void(const ShardConfig&)> cb) {
  RequestId id = fresh_id();
  dispatch(id, sim::AnyMessage(CsGetLast{shard, id}),
           [cb = std::move(cb)](const sim::AnyMessage& m) {
             cb(m.as<CsGetLastReply>()->config);
           });
}

void CsClient::get(ShardId shard, Epoch epoch,
                   std::function<void(bool, const ShardConfig&)> cb) {
  RequestId id = fresh_id();
  dispatch(id, sim::AnyMessage(CsGet{shard, epoch, id}),
           [cb = std::move(cb)](const sim::AnyMessage& m) {
             const auto* r = m.as<CsGetReply>();
             cb(r->found, r->config);
           });
}

void CsClient::dispatch(RequestId id, sim::AnyMessage request,
                        std::function<void(const sim::AnyMessage&)> done) {
  Pending p;
  p.request = request;
  p.done = std::move(done);
  pending_.emplace(id, std::move(p));
  broadcast(request);
  arm_retry(id);
}

void CsClient::broadcast(const sim::AnyMessage& request) {
  for (ProcessId e : endpoints_) rt_.send(owner_, e, request);
}

void CsClient::arm_retry(RequestId id) {
  rt_.schedule_for(owner_, retry_every_, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    broadcast(it->second.request);
    arm_retry(id);
  });
}

bool CsClient::complete(RequestId id, const sim::AnyMessage& msg) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return true;  // duplicate reply: consumed, ignored
  auto done = std::move(it->second.done);
  pending_.erase(it);
  done(msg);
  return true;
}

bool CsClient::handle(const sim::AnyMessage& msg) {
  if (const auto* r = msg.as<CsCasReply>()) return complete(r->req_id, msg);
  if (const auto* r = msg.as<CsGetLastReply>()) return complete(r->req_id, msg);
  if (const auto* r = msg.as<CsGetReply>()) return complete(r->req_id, msg);
  return false;
}

GcsClient::GcsClient(rt::Runtime& rt, ProcessId owner,
                     std::vector<ProcessId> endpoints, Duration retry_every)
    : rt_(rt),
      owner_(owner),
      endpoints_(std::move(endpoints)),
      retry_every_(retry_every) {}

GcsClient::GcsClient(sim::Simulator& sim, sim::Network& net, ProcessId owner,
                     std::vector<ProcessId> endpoints, Duration retry_every)
    : GcsClient(net.runtime(), owner, std::move(endpoints), retry_every) {
  (void)sim;
}

void GcsClient::cas(Epoch expected, GlobalConfig next, std::function<void(bool)> cb) {
  RequestId id = fresh_id();
  GcsCas req{expected, std::move(next), id};
  dispatch(id, sim::AnyMessage(std::move(req)),
           [cb = std::move(cb)](const sim::AnyMessage& m) {
             cb(m.as<GcsCasReply>()->ok);
           });
}

void GcsClient::get_last(std::function<void(const GlobalConfig&)> cb) {
  RequestId id = fresh_id();
  dispatch(id, sim::AnyMessage(GcsGetLast{id}),
           [cb = std::move(cb)](const sim::AnyMessage& m) {
             cb(m.as<GcsGetLastReply>()->config);
           });
}

void GcsClient::get(Epoch epoch, std::function<void(bool, const GlobalConfig&)> cb) {
  RequestId id = fresh_id();
  dispatch(id, sim::AnyMessage(GcsGet{epoch, id}),
           [cb = std::move(cb)](const sim::AnyMessage& m) {
             const auto* r = m.as<GcsGetReply>();
             cb(r->found, r->config);
           });
}

void GcsClient::dispatch(RequestId id, sim::AnyMessage request,
                         std::function<void(const sim::AnyMessage&)> done) {
  Pending p;
  p.request = request;
  p.done = std::move(done);
  pending_.emplace(id, std::move(p));
  broadcast(request);
  arm_retry(id);
}

void GcsClient::broadcast(const sim::AnyMessage& request) {
  for (ProcessId e : endpoints_) rt_.send(owner_, e, request);
}

void GcsClient::arm_retry(RequestId id) {
  rt_.schedule_for(owner_, retry_every_, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    broadcast(it->second.request);
    arm_retry(id);
  });
}

bool GcsClient::complete(RequestId id, const sim::AnyMessage& msg) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return true;
  auto done = std::move(it->second.done);
  pending_.erase(it);
  done(msg);
  return true;
}

bool GcsClient::handle(const sim::AnyMessage& msg) {
  if (const auto* r = msg.as<GcsCasReply>()) return complete(r->req_id, msg);
  if (const auto* r = msg.as<GcsGetLastReply>()) return complete(r->req_id, msg);
  if (const auto* r = msg.as<GcsGetReply>()) return complete(r->req_id, msg);
  return false;
}

}  // namespace ratc::configsvc
