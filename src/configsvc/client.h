// Client-side helpers for talking to the configuration service.
//
// A CsClient is embedded in a protocol process.  It matches replies to
// outstanding requests by request id, retries periodically (needed when the
// CS is the Paxos-replicated variant and its leader changes), and sends
// every request to all known CS endpoints (non-leader frontends ignore it).
// This hides whether the CS is the reliable process of Sec. 3's model or a
// 2f+1 replicated service.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "configsvc/config.h"
#include "configsvc/messages.h"
#include "rt/runtime.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ratc::configsvc {

class CsClient {
 public:
  CsClient(rt::Runtime& rt, ProcessId owner, std::vector<ProcessId> endpoints,
           Duration retry_every = 50);
  CsClient(sim::Simulator& sim, sim::Network& net, ProcessId owner,
           std::vector<ProcessId> endpoints, Duration retry_every = 50);

  /// compare_and_swap(s, e, <e', M, pl>) — paper Sec. 3.
  void cas(ShardId shard, Epoch expected, ShardConfig next,
           std::function<void(bool)> cb);

  /// get_last(s).
  void get_last(ShardId shard, std::function<void(const ShardConfig&)> cb);

  /// get(s, e).
  void get(ShardId shard, Epoch epoch,
           std::function<void(bool, const ShardConfig&)> cb);

  /// The owner forwards every incoming message here first; returns true if
  /// the message was a CS reply and has been consumed.
  bool handle(const sim::AnyMessage& msg);

 private:
  struct Pending {
    sim::AnyMessage request{0};
    std::function<void(const sim::AnyMessage&)> done;
  };

  RequestId fresh_id() { return (static_cast<RequestId>(owner_) << 32) | next_seq_++; }
  void dispatch(RequestId id, sim::AnyMessage request,
                std::function<void(const sim::AnyMessage&)> done);
  void broadcast(const sim::AnyMessage& request);
  void arm_retry(RequestId id);
  bool complete(RequestId id, const sim::AnyMessage& msg);

  rt::Runtime& rt_;
  ProcessId owner_;
  std::vector<ProcessId> endpoints_;
  Duration retry_every_;
  std::uint32_t next_seq_ = 1;
  std::map<RequestId, Pending> pending_;
};

/// Same pattern for the global configuration service of the RDMA protocol.
class GcsClient {
 public:
  GcsClient(rt::Runtime& rt, ProcessId owner, std::vector<ProcessId> endpoints,
            Duration retry_every = 50);
  GcsClient(sim::Simulator& sim, sim::Network& net, ProcessId owner,
            std::vector<ProcessId> endpoints, Duration retry_every = 50);

  void cas(Epoch expected, GlobalConfig next, std::function<void(bool)> cb);
  void get_last(std::function<void(const GlobalConfig&)> cb);
  void get(Epoch epoch, std::function<void(bool, const GlobalConfig&)> cb);

  bool handle(const sim::AnyMessage& msg);

 private:
  struct Pending {
    sim::AnyMessage request{0};
    std::function<void(const sim::AnyMessage&)> done;
  };

  RequestId fresh_id() { return (static_cast<RequestId>(owner_) << 32) | next_seq_++; }
  void dispatch(RequestId id, sim::AnyMessage request,
                std::function<void(const sim::AnyMessage&)> done);
  void broadcast(const sim::AnyMessage& request);
  void arm_retry(RequestId id);
  bool complete(RequestId id, const sim::AnyMessage& msg);

  rt::Runtime& rt_;
  ProcessId owner_;
  std::vector<ProcessId> endpoints_;
  Duration retry_every_;
  std::uint32_t next_seq_ = 1;
  std::map<RequestId, Pending> pending_;
};

}  // namespace ratc::configsvc
