#include "configsvc/replicated_service.h"

#include <cassert>

namespace ratc::configsvc {

CsServer::CsServer(rt::Runtime& rt, ProcessId id)
    : Process(rt, id, "cs-frontend" + std::to_string(id)) {}

CsServer::CsServer(sim::Simulator& sim, sim::Network& net, ProcessId id)
    : CsServer(net.runtime(), id) {
  (void)sim;
}

void CsServer::bootstrap(ShardId shard, ShardConfig config) {
  assert(config.valid());
  configs_[shard][config.epoch] = config;
  last_epoch_[shard] = std::max(last_epoch_[shard], config.epoch);
}

const ShardConfig& CsServer::last(ShardId shard) const {
  static const ShardConfig kInvalid;
  auto it = last_epoch_.find(shard);
  if (it == last_epoch_.end()) return kInvalid;
  return configs_.at(shard).at(it->second);
}

void CsServer::on_message(ProcessId from, const sim::AnyMessage& msg) {
  bool is_request = msg.is<CsCas>() || msg.is<CsGetLast>() || msg.is<CsGet>();
  if (!is_request) return;
  // Only the current leader's frontend sequences requests; other frontends
  // drop them and rely on the client's retry loop.
  if (paxos_ == nullptr || !paxos_->is_leader()) return;
  paxos_->submit(sim::AnyMessage(CsCommand{from, msg}));
}

void CsServer::apply(Slot slot, const sim::AnyMessage& cmd) {
  (void)slot;
  const auto* c = cmd.as<CsCommand>();
  if (c == nullptr) return;

  // Extract the request id for reply caching.
  RequestId req_id = 0;
  if (const auto* r = c->request.as<CsCas>()) req_id = r->req_id;
  if (const auto* r = c->request.as<CsGetLast>()) req_id = r->req_id;
  if (const auto* r = c->request.as<CsGet>()) req_id = r->req_id;

  bool cas_ok = false;
  ShardId cas_shard = 0;
  auto it = replies_.find(req_id);
  sim::AnyMessage reply{0};
  if (it != replies_.end()) {
    reply = it->second;  // duplicate command: replay cached reply
  } else {
    reply = execute(c->request, &cas_ok, &cas_shard);
    replies_.emplace(req_id, reply);
    if (cas_ok && paxos_->is_leader()) {
      for (ProcessId p : subscribers_) {
        rt().send_msg(id(), p, ConfigChange{cas_shard, last(cas_shard)});
      }
    }
  }
  if (paxos_->is_leader()) rt().send(id(), c->origin, reply);
}

sim::AnyMessage CsServer::execute(const sim::AnyMessage& request, bool* cas_ok,
                                  ShardId* cas_shard) {
  if (const auto* cas = request.as<CsCas>()) {
    Epoch last = last_epoch_.count(cas->shard) ? last_epoch_[cas->shard] : kNoEpoch;
    bool ok = (last == cas->expected) && (cas->next.epoch > last);
    if (ok) {
      configs_[cas->shard][cas->next.epoch] = cas->next;
      last_epoch_[cas->shard] = cas->next.epoch;
      *cas_ok = true;
      *cas_shard = cas->shard;
    }
    return sim::AnyMessage(CsCasReply{ok, cas->req_id});
  }
  if (const auto* gl = request.as<CsGetLast>()) {
    return sim::AnyMessage(CsGetLastReply{last(gl->shard), gl->req_id});
  }
  const auto* g = request.as<CsGet>();
  CsGetReply reply;
  reply.req_id = g->req_id;
  auto sit = configs_.find(g->shard);
  if (sit != configs_.end()) {
    auto eit = sit->second.find(g->epoch);
    if (eit != sit->second.end()) {
      reply.found = true;
      reply.config = eit->second;
    }
  }
  return sim::AnyMessage(reply);
}

ReplicatedConfigService::ReplicatedConfigService(sim::Simulator& sim,
                                                 sim::Network& net, Options options) {
  std::vector<ProcessId> paxos_group;
  for (std::size_t i = 0; i < options.num_servers; ++i) {
    paxos_group.push_back(options.first_pid + static_cast<ProcessId>(options.num_servers + i));
  }
  for (std::size_t i = 0; i < options.num_servers; ++i) {
    ProcessId fid = options.first_pid + static_cast<ProcessId>(i);
    auto server = std::make_unique<CsServer>(sim, net, fid);
    paxos::PaxosReplica::Options popt;
    popt.group = paxos_group;
    popt.initial_leader = paxos_group[0];
    CsServer* raw = server.get();
    auto paxos = std::make_unique<paxos::PaxosReplica>(
        sim, net, paxos_group[i], "cs-paxos" + std::to_string(i), popt,
        [raw](Slot slot, const sim::AnyMessage& cmd) { raw->apply(slot, cmd); });
    server->attach_paxos(paxos.get());
    sim.add_process(server.get());
    sim.add_process(paxos.get());
    servers_.push_back(std::move(server));
    paxoses_.push_back(std::move(paxos));
  }
}

std::vector<ProcessId> ReplicatedConfigService::endpoints() const {
  std::vector<ProcessId> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(s->id());
  return out;
}

void ReplicatedConfigService::bootstrap(ShardId shard, const ShardConfig& config) {
  for (auto& s : servers_) s->bootstrap(shard, config);
}

void ReplicatedConfigService::subscribe(ProcessId p) {
  for (auto& s : servers_) s->subscribe(p);
}

void ReplicatedConfigService::crash_server(sim::Simulator& sim, std::size_t i) {
  sim.crash(servers_[i]->id());
  sim.crash(paxoses_[i]->id());
}

}  // namespace ratc::configsvc
