// Shard configurations (paper Sec. 3): a configuration of a shard s is a
// tuple <e, M, pl> with epoch e, member set M and leader pl ∈ M.  The RDMA
// protocol (Sec. 5) replaces per-shard configurations with a single global
// configuration parameterized by shard.
#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace ratc::configsvc {

struct ShardConfig {
  Epoch epoch = kNoEpoch;
  std::vector<ProcessId> members;
  ProcessId leader = kNoProcess;

  bool valid() const { return epoch != kNoEpoch; }

  bool has_member(ProcessId p) const {
    return std::find(members.begin(), members.end(), p) != members.end();
  }

  std::vector<ProcessId> followers() const {
    std::vector<ProcessId> out;
    for (ProcessId p : members) {
      if (p != leader) out.push_back(p);
    }
    return out;
  }

  std::string to_string() const {
    std::string out = "<e=" + std::to_string(epoch) + ", M={";
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i) out += ",";
      out += process_name(members[i]);
    }
    out += "}, leader=" + process_name(leader) + ">";
    return out;
  }

  friend bool operator==(const ShardConfig&, const ShardConfig&) = default;
};

/// Global configuration for the RDMA protocol (Sec. 5 / Sec. C): one epoch
/// for the whole system, with per-shard membership and leaders.
struct GlobalConfig {
  Epoch epoch = kNoEpoch;
  std::map<ShardId, std::vector<ProcessId>> members;
  std::map<ShardId, ProcessId> leaders;

  bool valid() const { return epoch != kNoEpoch; }

  ShardConfig shard(ShardId s) const {
    ShardConfig c;
    c.epoch = epoch;
    auto mit = members.find(s);
    if (mit != members.end()) c.members = mit->second;
    auto lit = leaders.find(s);
    if (lit != leaders.end()) c.leader = lit->second;
    return c;
  }

  std::vector<ProcessId> all_members() const {
    std::vector<ProcessId> out;
    for (const auto& [s, ms] : members) {
      (void)s;
      for (ProcessId p : ms) {
        if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
      }
    }
    return out;
  }

  std::vector<ProcessId> all_leaders() const {
    std::vector<ProcessId> out;
    for (const auto& [s, l] : leaders) {
      (void)s;
      out.push_back(l);
    }
    return out;
  }

  friend bool operator==(const GlobalConfig&, const GlobalConfig&) = default;
};

}  // namespace ratc::configsvc
