#include "configsvc/simple_service.h"

#include <cassert>

#include "common/log.h"

namespace ratc::configsvc {

SimpleConfigService::SimpleConfigService(rt::Runtime& rt, ProcessId id)
    : Process(rt, id, "cs") {}

SimpleConfigService::SimpleConfigService(sim::Simulator& sim, sim::Network& net,
                                         ProcessId id)
    : SimpleConfigService(net.runtime(), id) {
  (void)sim;
}

void SimpleConfigService::bootstrap(ShardId shard, ShardConfig config) {
  assert(config.valid());
  configs_[shard][config.epoch] = config;
  last_epoch_[shard] = std::max(last_epoch_[shard], config.epoch);
}

const ShardConfig& SimpleConfigService::last(ShardId shard) const {
  static const ShardConfig kInvalid;
  auto it = last_epoch_.find(shard);
  if (it == last_epoch_.end()) return kInvalid;
  return configs_.at(shard).at(it->second);
}

void SimpleConfigService::on_message(ProcessId from, const sim::AnyMessage& msg) {
  if (const auto* cas = msg.as<CsCas>()) {
    Epoch last = last_epoch_.count(cas->shard) ? last_epoch_[cas->shard] : kNoEpoch;
    bool ok = (last == cas->expected) && (cas->next.epoch > last);
    if (ok) {
      configs_[cas->shard][cas->next.epoch] = cas->next;
      last_epoch_[cas->shard] = cas->next.epoch;
      RATC_DEBUG("CS: stored s" << cas->shard << " " << cas->next.to_string());
    }
    rt().send_msg(id(), from, CsCasReply{ok, cas->req_id});
    if (ok) broadcast_change(cas->shard, cas->next);
  } else if (const auto* gl = msg.as<CsGetLast>()) {
    rt().send_msg(id(), from, CsGetLastReply{last(gl->shard), gl->req_id});
  } else if (const auto* g = msg.as<CsGet>()) {
    CsGetReply reply;
    reply.req_id = g->req_id;
    auto sit = configs_.find(g->shard);
    if (sit != configs_.end()) {
      auto eit = sit->second.find(g->epoch);
      if (eit != sit->second.end()) {
        reply.found = true;
        reply.config = eit->second;
      }
    }
    rt().send_msg(id(), from, reply);
  }
}

void SimpleConfigService::broadcast_change(ShardId shard, const ShardConfig& config) {
  // Paper: "the service sends it in a CONFIG_CHANGE message to the members
  // of shards other than s".  Receivers filter on their own shard (line 68),
  // so notifying every subscriber is equivalent.
  for (ProcessId p : subscribers_) {
    rt().send_msg(id(), p, ConfigChange{shard, config});
  }
}

SimpleGlobalConfigService::SimpleGlobalConfigService(rt::Runtime& rt, ProcessId id)
    : Process(rt, id, "gcs") {}

SimpleGlobalConfigService::SimpleGlobalConfigService(sim::Simulator& sim,
                                                     sim::Network& net, ProcessId id)
    : SimpleGlobalConfigService(net.runtime(), id) {
  (void)sim;
}

void SimpleGlobalConfigService::bootstrap(GlobalConfig config) {
  assert(config.valid());
  last_epoch_ = std::max(last_epoch_, config.epoch);
  configs_[config.epoch] = std::move(config);
}

void SimpleGlobalConfigService::on_message(ProcessId from, const sim::AnyMessage& msg) {
  if (const auto* cas = msg.as<GcsCas>()) {
    bool ok = (last_epoch_ == cas->expected) && (cas->next.epoch > last_epoch_);
    if (ok) {
      last_epoch_ = cas->next.epoch;
      configs_[cas->next.epoch] = cas->next;
      RATC_DEBUG("GCS: stored global epoch " << cas->next.epoch);
    }
    rt().send_msg(id(), from, GcsCasReply{ok, cas->req_id});
    if (ok) {
      for (ProcessId p : subscribers_) {
        rt().send_msg(id(), p, GlobalConfigChange{configs_.at(last_epoch_)});
      }
    }
  } else if (const auto* gl = msg.as<GcsGetLast>()) {
    GcsGetLastReply reply;
    if (last_epoch_ != kNoEpoch) reply.config = configs_.at(last_epoch_);
    reply.req_id = gl->req_id;
    rt().send_msg(id(), from, reply);
  } else if (const auto* g = msg.as<GcsGet>()) {
    GcsGetReply reply;
    reply.req_id = g->req_id;
    auto it = configs_.find(g->epoch);
    if (it != configs_.end()) {
      reply.found = true;
      reply.config = it->second;
    }
    rt().send_msg(id(), from, reply);
  }
}

}  // namespace ratc::configsvc
