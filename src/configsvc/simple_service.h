// Reliable-process configuration services (paper Sec. 3 assumes the CS is a
// reliable process; the Paxos-replicated realization is in
// replicated_service.h).
#pragma once

#include <map>
#include <vector>

#include "configsvc/config.h"
#include "configsvc/messages.h"
#include "sim/network.h"
#include "sim/process.h"

namespace ratc::configsvc {

/// Per-shard configuration store used by the message-passing protocol.
class SimpleConfigService : public sim::Process {
 public:
  SimpleConfigService(rt::Runtime& rt, ProcessId id);
  SimpleConfigService(sim::Simulator& sim, sim::Network& net, ProcessId id);

  /// Installs an initial configuration without message traffic (bootstrap of
  /// the pre-activated epoch-1 configurations).
  void bootstrap(ShardId shard, ShardConfig config);

  /// Registers a process to receive CONFIG_CHANGE notifications for shards
  /// other than its own (Fig. 1 line 67).
  void subscribe(ProcessId p) { subscribers_.push_back(p); }

  const ShardConfig& last(ShardId shard) const;

  void on_message(ProcessId from, const sim::AnyMessage& msg) override;

 private:
  void broadcast_change(ShardId shard, const ShardConfig& config);

  std::map<ShardId, std::map<Epoch, ShardConfig>> configs_;
  std::map<ShardId, Epoch> last_epoch_;
  std::vector<ProcessId> subscribers_;
};

/// Global configuration store used by the RDMA protocol (Sec. 5): a single
/// sequence of system-wide configurations; the interface loses its shard
/// argument, exactly as the paper describes.
class SimpleGlobalConfigService : public sim::Process {
 public:
  SimpleGlobalConfigService(rt::Runtime& rt, ProcessId id);
  SimpleGlobalConfigService(sim::Simulator& sim, sim::Network& net, ProcessId id);

  void bootstrap(GlobalConfig config);

  /// Registers a process to receive GlobalConfigChange notifications
  /// whenever a CAS persists a new configuration (the Sec. 5 analogue of
  /// Fig. 1 line 67's CONFIG_CHANGE subscription).
  void subscribe(ProcessId p) { subscribers_.push_back(p); }

  const GlobalConfig& last() const { return configs_.at(last_epoch_); }

  void on_message(ProcessId from, const sim::AnyMessage& msg) override;

 private:
  std::map<Epoch, GlobalConfig> configs_;
  Epoch last_epoch_ = kNoEpoch;
  std::vector<ProcessId> subscribers_;
};

}  // namespace ratc::configsvc
