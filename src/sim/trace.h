// Message-flow tracer: records every send/deliver so tests and benches can
// assert or print the flows of the paper's Figure 2a/2b diagrams.
#pragma once

#include <string>
#include <vector>

#include "sim/network.h"

namespace ratc::sim {

struct TraceEntry {
  Time time = 0;
  enum class Kind { kSend, kDeliver, kDrop } kind = Kind::kSend;
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  std::string type;
};

class Tracer : public NetworkObserver {
 public:
  void on_send(Time now, ProcessId from, ProcessId to, const AnyMessage& msg) override {
    entries_.push_back({now, TraceEntry::Kind::kSend, from, to, msg.type_name()});
  }
  void on_deliver(Time now, ProcessId from, ProcessId to, const AnyMessage& msg) override {
    entries_.push_back({now, TraceEntry::Kind::kDeliver, from, to, msg.type_name()});
  }
  void on_drop(Time now, ProcessId from, ProcessId to, const AnyMessage& msg) override {
    entries_.push_back({now, TraceEntry::Kind::kDrop, from, to, msg.type_name()});
  }

  const std::vector<TraceEntry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  /// Sequence of message type names delivered, in order (ignores drops).
  std::vector<std::string> delivered_types() const {
    std::vector<std::string> out;
    for (const auto& e : entries_) {
      if (e.kind == TraceEntry::Kind::kDeliver) out.push_back(e.type);
    }
    return out;
  }

  /// True if a message of the given type was ever delivered.
  bool delivered(const std::string& type) const {
    for (const auto& e : entries_) {
      if (e.kind == TraceEntry::Kind::kDeliver && e.type == type) return true;
    }
    return false;
  }

  /// Pretty-print (used by the trace sections of the benches).
  std::string render() const {
    std::string out;
    for (const auto& e : entries_) {
      const char* k = e.kind == TraceEntry::Kind::kSend
                          ? "send  "
                          : (e.kind == TraceEntry::Kind::kDeliver ? "deliver" : "drop  ");
      out += "t=" + std::to_string(e.time) + "\t" + k + "\t" +
             process_name(e.from) + " -> " + process_name(e.to) + "\t" + e.type + "\n";
    }
    return out;
  }

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace ratc::sim
