// Type-erased message envelope.
//
// Protocol modules define plain structs for each message kind (PREPARE,
// ACCEPT, ...).  The network carries them type-erased so heterogeneous
// processes (replicas, clients, the configuration service) share one
// simulator.  Receivers dispatch with `msg.as<Prepare>()`.
//
// Messages opt into richer tracing/stats by providing:
//   static constexpr const char* kName;   // message name for traces
//   std::size_t wire_size() const;        // approximate bytes on the wire
#pragma once

#include <cstddef>
#include <memory>
#include <typeindex>
#include <typeinfo>
#include <utility>

namespace ratc::sim {

template <typename T>
concept HasMessageName = requires { { T::kName } -> std::convertible_to<const char*>; };

template <typename T>
concept HasWireSize = requires(const T& t) {
  { t.wire_size() } -> std::convertible_to<std::size_t>;
};

/// Payload of a default-constructed AnyMessage.
struct EmptyMessage {
  static constexpr const char* kName = "EMPTY";
};

class AnyMessage {
 public:
  /// Default: an EmptyMessage placeholder (lets AnyMessage live in standard
  /// containers).
  AnyMessage() : AnyMessage(EmptyMessage{}) {}

  template <typename T>
  explicit AnyMessage(T msg)
      : ptr_(std::make_shared<T>(std::move(msg))), type_(typeid(T)) {
    const T& ref = *std::static_pointer_cast<const T>(ptr_);
    if constexpr (HasMessageName<T>) {
      name_ = T::kName;
    } else {
      name_ = typeid(T).name();
    }
    if constexpr (HasWireSize<T>) {
      size_ = ref.wire_size();
    } else {
      size_ = sizeof(T);
    }
  }

  /// Returns the contained message if it has dynamic type T, else nullptr.
  template <typename T>
  const T* as() const {
    if (type_ != std::type_index(typeid(T))) return nullptr;
    return static_cast<const T*>(ptr_.get());
  }

  template <typename T>
  bool is() const {
    return type_ == std::type_index(typeid(T));
  }

  const char* type_name() const { return name_; }
  std::size_t wire_size() const { return size_; }

 private:
  std::shared_ptr<const void> ptr_;
  std::type_index type_;
  const char* name_ = "?";
  std::size_t size_ = 0;
};

}  // namespace ratc::sim
