#include "sim/network.h"

#include <algorithm>

#include "common/log.h"

namespace ratc::sim {

namespace {
std::uint64_t channel_key(ProcessId from, ProcessId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}
}  // namespace

Network::Options Network::unit_delay_options() {
  Options o;
  o.delay = [](Rng&, ProcessId, ProcessId) -> Duration { return 1; };
  return o;
}

Network::Options Network::exponential_delay_options(double mean) {
  Options o;
  o.delay = [mean](Rng& rng, ProcessId, ProcessId) -> Duration {
    return rng.exponential(mean);
  };
  return o;
}

Network::Network(Simulator& sim, Options options)
    : sim_(sim), runtime_(sim, this), options_(std::move(options)) {}

const ProcessTraffic& Network::traffic(ProcessId p) const {
  static const ProcessTraffic kEmpty;
  auto it = traffic_.find(p);
  return it == traffic_.end() ? kEmpty : it->second;
}

void Network::send(ProcessId from, ProcessId to, AnyMessage msg) {
  if (sim_.crashed(from)) return;
  Time now = sim_.now();
  for (auto* obs : observers_) obs->on_send(now, from, to, msg);
  if (options_.record_stats) {
    auto& t = traffic_[from];
    ++t.msgs_sent;
    t.bytes_sent += msg.wire_size();
    ++t.sent_by_type[msg.type_name()];
    ++total_messages_;
    total_bytes_ += msg.wire_size();
  }
  MessageFate fate;
  if (fault_ != nullptr) fate = fault_->on_message(now, from, to, msg);
  if (fate.drop) {
    for (auto* obs : observers_) obs->on_drop(now, from, to, msg);
    return;
  }
  Duration d = options_.delay(sim_.rng(), from, to) + fate.extra_delay;
  Time deliver_at = now + std::max<Duration>(d, 1);
  // FIFO per channel: never deliver before an earlier message on the same
  // channel.  Equal times preserve order via the event queue's sequence
  // numbers.
  Time& clock = channel_clock_[channel_key(from, to)];
  deliver_at = std::max(deliver_at, clock);
  clock = deliver_at;
  sim_.schedule(deliver_at - now, [this, from, to, m = std::move(msg)]() {
    deliver(from, to, m);
  });
}

void Network::deliver(ProcessId from, ProcessId to, const AnyMessage& msg) {
  Time now = sim_.now();
  Process* p = sim_.process(to);
  if (p == nullptr || sim_.crashed(to)) {
    for (auto* obs : observers_) obs->on_drop(now, from, to, msg);
    return;
  }
  for (auto* obs : observers_) obs->on_deliver(now, from, to, msg);
  if (options_.record_stats) {
    auto& t = traffic_[to];
    ++t.msgs_received;
    t.bytes_received += msg.wire_size();
    ++t.received_by_type[msg.type_name()];
  }
  RATC_TRACE("deliver t=" << now << " " << process_name(from) << "->"
                          << process_name(to) << " " << msg.type_name());
  p->on_message(from, msg);
}

}  // namespace ratc::sim
