// Base class for processes (paper Sec. 3 "system model": a set of
// processes that may fail by crashing, i.e. permanently stop executing).
//
// A process is bound to an `rt::Runtime` — either the deterministic
// simulator or the multithreaded real-time executor — and interacts with
// the world only through that seam (`rt()`): timers, clocks, randomness and
// message sends.  This is what lets the same protocol code run on both.
#pragma once

#include <string>

#include "common/types.h"
#include "rt/runtime.h"
#include "sim/message.h"

namespace ratc::sim {

class Simulator;

class Process {
 public:
  Process(rt::Runtime& rt, ProcessId id, std::string name)
      : rt_(rt), id_(id), name_(std::move(name)) {}
  /// Sim-harness compatibility: binds to the simulator's embedded runtime.
  Process(Simulator& sim, ProcessId id, std::string name);
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Invoked by the runtime when a message is delivered.  Never invoked
  /// after the process crashes, and never concurrently with another
  /// handler or timer of the same process.
  virtual void on_message(ProcessId from, const AnyMessage& msg) = 0;

 protected:
  rt::Runtime& rt() { return rt_; }
  const rt::Runtime& rt() const { return rt_; }

 private:
  rt::Runtime& rt_;
  ProcessId id_;
  std::string name_;
};

}  // namespace ratc::sim
