// Base class for simulated processes (paper Sec. 3 "system model": a set of
// processes that may fail by crashing, i.e. permanently stop executing).
#pragma once

#include <string>

#include "common/types.h"
#include "sim/message.h"

namespace ratc::sim {

class Simulator;

class Process {
 public:
  Process(Simulator& sim, ProcessId id, std::string name)
      : sim_(sim), id_(id), name_(std::move(name)) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Invoked by the network when a message is delivered.  Never invoked
  /// after the process crashes.
  virtual void on_message(ProcessId from, const AnyMessage& msg) = 0;

 protected:
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

 private:
  Simulator& sim_;
  ProcessId id_;
  std::string name_;
};

}  // namespace ratc::sim
