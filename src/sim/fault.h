// Message-level fault injection hook shared by the two transport layers
// (the message-passing Network and the one-sided RDMA Fabric).
//
// A FaultInjector is consulted once per message at send time and decides its
// fate: deliver normally, deliver with extra delay (on top of the sampled
// propagation delay; per-channel FIFO is still enforced by the transports),
// or drop.  On the Network a drop means the message silently disappears; on
// the Fabric it means the one-sided write is rejected and the sender never
// receives a NIC completion.
//
// No injector is installed by default, so production paths pay a single
// null-pointer check.  The fault-injection harness in tests/harness/ is the
// canonical implementation (harness::Nemesis).
#pragma once

#include "common/types.h"
#include "sim/message.h"

namespace ratc::sim {

struct MessageFate {
  bool drop = false;         ///< discard instead of scheduling delivery
  Duration extra_delay = 0;  ///< added to the sampled propagation delay
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Decides the fate of one message.  Must be deterministic given the
  /// injector's own seeded state; it must not touch the simulator's Rng, so
  /// installing an injector never perturbs the fault-free random stream.
  virtual MessageFate on_message(Time now, ProcessId from, ProcessId to,
                                 const AnyMessage& msg) = 0;
};

}  // namespace ratc::sim
