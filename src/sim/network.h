// Reliable FIFO message-passing network (paper Sec. 3 "system model"):
// messages between non-faulty processes are eventually delivered, in FIFO
// order per sender-receiver pair.  Crashed senders send nothing; deliveries
// to crashed receivers are dropped.
//
// Delay models:
//  * unit-delay (default): every hop takes exactly 1 tick, so virtual time
//    equals the paper's "message delays" — used by the latency benches to
//    reproduce the 5-vs-7 delay claims.
//  * exponential: per-hop delay ~ Exp(mean), floored at 1 tick, with FIFO
//    enforced by clamping to the previous delivery time on the channel.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "rt/sim_runtime.h"
#include "sim/fault.h"
#include "sim/message.h"
#include "sim/simulator.h"

namespace ratc::sim {

/// Tap interface for protocol monitors and tracers.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void on_send(Time now, ProcessId from, ProcessId to, const AnyMessage& msg) {
    (void)now; (void)from; (void)to; (void)msg;
  }
  virtual void on_deliver(Time now, ProcessId from, ProcessId to, const AnyMessage& msg) {
    (void)now; (void)from; (void)to; (void)msg;
  }
  /// A message was discarded (sender or receiver crashed).
  virtual void on_drop(Time now, ProcessId from, ProcessId to, const AnyMessage& msg) {
    (void)now; (void)from; (void)to; (void)msg;
  }
};

/// Per-process traffic counters, broken down by message type for the
/// leader-load experiment (E3).
struct ProcessTraffic {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::map<std::string, std::uint64_t> sent_by_type;
  std::map<std::string, std::uint64_t> received_by_type;
};

class Network {
 public:
  struct Options {
    /// Samples the propagation delay of one message.  Defaults to unit delay.
    std::function<Duration(Rng&, ProcessId from, ProcessId to)> delay;
    /// If true, traffic statistics are recorded (small map overhead).
    bool record_stats = true;
  };

  static Options unit_delay_options();
  static Options exponential_delay_options(double mean);

  Network(Simulator& sim, Options options = unit_delay_options());

  /// Sends a message.  No-op if the sender has already crashed.
  void send(ProcessId from, ProcessId to, AnyMessage msg);

  /// Convenience: wrap-and-send.
  template <typename T>
  void send_msg(ProcessId from, ProcessId to, T msg) {
    send(from, to, AnyMessage(std::move(msg)));
  }

  void add_observer(NetworkObserver* obs) { observers_.push_back(obs); }

  /// Installs (or with nullptr removes) a fault-injection hook consulted on
  /// every send.  Dropped messages are reported to observers via on_drop.
  void set_fault_injector(FaultInjector* fi) { fault_ = fi; }

  const ProcessTraffic& traffic(ProcessId p) const;
  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  Simulator& simulator() { return sim_; }

  /// This network's rt::Runtime view (sim clock/timers/rng + this network's
  /// send path) — what protocol classes bind to in sim-twin harnesses.
  rt::SimRuntime& runtime() { return runtime_; }

 private:
  void deliver(ProcessId from, ProcessId to, const AnyMessage& msg);

  Simulator& sim_;
  rt::SimRuntime runtime_;
  Options options_;
  std::vector<NetworkObserver*> observers_;
  FaultInjector* fault_ = nullptr;
  /// Last scheduled delivery time per (from,to) channel; enforces FIFO.
  std::unordered_map<std::uint64_t, Time> channel_clock_;
  std::unordered_map<ProcessId, ProcessTraffic> traffic_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace ratc::sim
