// Deterministic discrete-event simulator.
//
// Implements the paper's asynchronous system model: virtual time advances
// only through scheduled events; processes may crash-stop; all randomness
// comes from one seeded Rng; ties in the event queue are broken by insertion
// sequence, so a run is a pure function of its seed and inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "rt/sim_runtime.h"
#include "sim/process.h"

namespace ratc::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }
  Rng& rng() { return rng_; }

  /// The simulator's network-less rt::Runtime view (timers/clock/rng only;
  /// sends abort).  Networked stacks use `Network::runtime()` instead.
  rt::SimRuntime& runtime() { return runtime_; }

  /// Registers a process (non-owning; the harness owns process objects and
  /// must keep them alive for the simulator's lifetime).
  void add_process(Process* p);

  Process* process(ProcessId id) const;
  bool has_process(ProcessId id) const { return processes_.count(id) > 0; }

  /// Crash-stops a process: pending deliveries and timers for it are
  /// discarded at fire time, and it will never execute again.
  void crash(ProcessId id);
  bool crashed(ProcessId id) const { return crashed_.count(id) > 0; }

  /// Schedules `fn` to run at now()+delay regardless of process liveness.
  void schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` to run at now()+delay unless `owner` has crashed by
  /// then.  Use for all process-local timers.
  void schedule_for(ProcessId owner, Duration delay, std::function<void()> fn);

  /// Runs events until the queue drains or `max_events` fire.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events until `deadline` (inclusive) or queue drain.
  std::size_t run_until(Time deadline);

  /// Runs until `done()` holds (checked after each event), the queue drains,
  /// or `max_events` fire.  Returns true iff the predicate held on exit.
  bool run_until_pred(const std::function<bool()>& done, std::size_t max_events = SIZE_MAX);

  std::size_t events_executed() const { return events_executed_; }
  bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    ProcessId owner;  // kNoProcess => unconditional
    std::function<void()> fn;
  };
  // Min-heap comparator over (time, seq); seq is unique, so the order is a
  // strict total order and heap restructuring cannot reorder equal keys.
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among equal times
    }
  };

  void push_event(Time time, ProcessId owner, std::function<void()> fn);
  bool step();

  Time now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::size_t events_executed_ = 0;
  Rng rng_;
  // A raw vector managed with std::push_heap/pop_heap instead of
  // std::priority_queue: top() of a priority_queue is const, which forces a
  // copy of the std::function closure on every pop.  The raw heap lets
  // step() move the event out before running it, and lets the constructor
  // reserve the backing store (hot-path: millions of events per sweep).
  std::vector<Event> queue_;
  rt::SimRuntime runtime_;
  std::unordered_map<ProcessId, Process*> processes_;
  std::unordered_set<ProcessId> crashed_;
};

}  // namespace ratc::sim
