#include "sim/simulator.h"

#include <algorithm>
#include <cassert>

namespace ratc::sim {

namespace {
// Big enough that typical sweeps never regrow the heap's backing vector,
// small enough (an Event is ~64 bytes) to be negligible per Simulator.
constexpr std::size_t kInitialQueueCapacity = 1024;
}  // namespace

Simulator::Simulator(std::uint64_t seed) : rng_(seed), runtime_(*this, nullptr) {
  queue_.reserve(kInitialQueueCapacity);
}

Process::Process(Simulator& sim, ProcessId id, std::string name)
    : Process(sim.runtime(), id, std::move(name)) {}

void Simulator::add_process(Process* p) {
  assert(p != nullptr);
  assert(processes_.count(p->id()) == 0 && "duplicate process id");
  processes_[p->id()] = p;
}

Process* Simulator::process(ProcessId id) const {
  auto it = processes_.find(id);
  return it == processes_.end() ? nullptr : it->second;
}

void Simulator::crash(ProcessId id) { crashed_.insert(id); }

void Simulator::push_event(Time time, ProcessId owner, std::function<void()> fn) {
  queue_.push_back(Event{time, next_seq_++, owner, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), EventOrder{});
}

void Simulator::schedule(Duration delay, std::function<void()> fn) {
  push_event(now_ + delay, kNoProcess, std::move(fn));
}

void Simulator::schedule_for(ProcessId owner, Duration delay, std::function<void()> fn) {
  push_event(now_ + delay, owner, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  std::pop_heap(queue_.begin(), queue_.end(), EventOrder{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  assert(ev.time >= now_);
  now_ = ev.time;
  ++events_executed_;
  if (ev.owner == kNoProcess || crashed_.count(ev.owner) == 0) {
    ev.fn();
  }
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.front().time <= deadline && step()) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

bool Simulator::run_until_pred(const std::function<bool()>& done, std::size_t max_events) {
  if (done()) return true;
  std::size_t n = 0;
  while (n < max_events && step()) {
    ++n;
    if (done()) return true;
  }
  return done();
}

}  // namespace ratc::sim
